"""Tests for the append-only run-history ledger (repro.obs.history)."""

from __future__ import annotations

import json

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.obs import history


def make_manifest(command="profile", elapsed=1.0, stages=None, **extra):
    manifest = {
        "schema": "repro.obs.manifest/1",
        "version": "1.0.0",
        "command": command,
        "argv": [command, "505.mcf_r", "--obs", "summary"],
        "elapsed_s": elapsed,
        "cpu_s": elapsed / 2,
        "stages": stages or {
            "profile": {"calls": 1, "wall_s": elapsed / 2, "cpu_s": 0.1}
        },
        "metrics": {
            "counters": {"profiler.cache.miss": 1},
            "gauges": {},
            "histograms": {},
        },
    }
    manifest.update(extra)
    return manifest


class TestRecordAndList:
    def test_record_returns_info_and_lists(self, tmp_path):
        info = history.record_run(make_manifest(), tmp_path)
        assert info.seq == 0
        assert info.command == "profile"
        assert info.id.startswith("000000-")
        runs = history.list_runs(tmp_path)
        assert [r.id for r in runs] == [info.id]

    def test_sequence_numbers_increase(self, tmp_path):
        ids = [
            history.record_run(make_manifest(elapsed=i + 1.0), tmp_path).seq
            for i in range(4)
        ]
        assert ids == [0, 1, 2, 3]
        runs = history.list_runs(tmp_path)
        assert [r.seq for r in runs] == [0, 1, 2, 3]

    def test_id_embeds_content_checksum(self, tmp_path):
        manifest = make_manifest()
        info = history.record_run(manifest, tmp_path)
        checksum = history.checksum_manifest(manifest)
        assert info.checksum == checksum
        assert info.id == f"000000-{checksum[:10]}"

    def test_empty_directory_lists_nothing(self, tmp_path):
        assert history.list_runs(tmp_path) == []

    def test_env_var_controls_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        history.record_run(make_manifest())
        assert len(history.list_runs()) == 1
        assert (tmp_path / "history").is_dir()

    def test_no_leftover_temp_files(self, tmp_path):
        history.record_run(make_manifest(), tmp_path)
        strays = list((tmp_path / "history").glob(".tmp-*"))
        assert strays == []


class TestLoadAndVerify:
    def test_load_roundtrip(self, tmp_path):
        manifest = make_manifest(elapsed=2.5)
        info = history.record_run(manifest, tmp_path)
        document = history.load_run(info.id, tmp_path)
        assert document["manifest"] == manifest
        assert document["seq"] == 0

    def test_load_detects_tampering(self, tmp_path):
        info = history.record_run(make_manifest(), tmp_path)
        path = history.history_dir(tmp_path) / f"{info.id}.json"
        document = json.loads(path.read_text())
        document["manifest"]["elapsed_s"] = 999.0
        path.write_text(json.dumps(document))
        with pytest.raises(AnalysisError, match="checksum"):
            history.load_run(info.id, tmp_path)

    def test_load_empty_history_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="empty"):
            history.load_run("latest", tmp_path)


class TestResolve:
    def _seed(self, tmp_path, n=3):
        return [
            history.record_run(make_manifest(elapsed=i + 1.0), tmp_path)
            for i in range(n)
        ]

    def test_latest_and_offsets(self, tmp_path):
        infos = self._seed(tmp_path)
        runs = history.list_runs(tmp_path)
        assert history.resolve_run("latest", runs).id == infos[-1].id
        assert history.resolve_run("-1", runs).id == infos[-1].id
        assert history.resolve_run("-3", runs).id == infos[0].id

    def test_sequence_number(self, tmp_path):
        infos = self._seed(tmp_path)
        runs = history.list_runs(tmp_path)
        assert history.resolve_run("1", runs).id == infos[1].id

    def test_id_prefix(self, tmp_path):
        infos = self._seed(tmp_path)
        runs = history.list_runs(tmp_path)
        assert history.resolve_run(infos[2].id[:8], runs).id == infos[2].id

    def test_unknown_reference_raises(self, tmp_path):
        self._seed(tmp_path)
        runs = history.list_runs(tmp_path)
        with pytest.raises(AnalysisError):
            history.resolve_run("zzzz", runs)
        with pytest.raises(AnalysisError):
            history.resolve_run("-9", runs)
        with pytest.raises(AnalysisError):
            history.resolve_run("77", runs)


class TestIndexRecovery:
    def test_corrupt_index_is_rebuilt(self, tmp_path):
        infos = [
            history.record_run(make_manifest(elapsed=i + 1.0), tmp_path)
            for i in range(3)
        ]
        index = history.history_dir(tmp_path) / history.INDEX_NAME
        index.write_text("{ not json")
        runs = history.list_runs(tmp_path)
        assert [r.id for r in runs] == [i.id for i in infos]
        # The rebuilt index is persisted.
        assert json.loads(index.read_text())["runs"]

    def test_missing_index_is_rebuilt(self, tmp_path):
        info = history.record_run(make_manifest(), tmp_path)
        (history.history_dir(tmp_path) / history.INDEX_NAME).unlink()
        assert [r.id for r in history.list_runs(tmp_path)] == [info.id]

    def test_recording_continues_after_rebuild(self, tmp_path):
        history.record_run(make_manifest(), tmp_path)
        (history.history_dir(tmp_path) / history.INDEX_NAME).unlink()
        info = history.record_run(make_manifest(elapsed=2.0), tmp_path)
        assert info.seq == 1


class TestPrune:
    def test_prune_keeps_newest(self, tmp_path):
        infos = [
            history.record_run(make_manifest(elapsed=i + 1.0), tmp_path)
            for i in range(5)
        ]
        removed = history.prune(2, tmp_path)
        assert removed == 3
        runs = history.list_runs(tmp_path)
        assert [r.id for r in runs] == [infos[3].id, infos[4].id]
        files = list(history.history_dir(tmp_path).glob("*-*.json"))
        assert len(files) == 2

    def test_prune_noop_when_under_limit(self, tmp_path):
        history.record_run(make_manifest(), tmp_path)
        assert history.prune(10, tmp_path) == 0
        assert len(history.list_runs(tmp_path)) == 1

    def test_prune_rejects_negative(self, tmp_path):
        with pytest.raises(ConfigurationError):
            history.prune(-1, tmp_path)


class TestRunKey:
    def test_scrub_removes_obs_flags(self):
        argv = [
            "profile", "505.mcf_r", "--obs", "summary",
            "--trace-out", "t.json", "--metrics-out=m.txt",
        ]
        assert history.scrub_argv(argv) == ["profile", "505.mcf_r"]

    def test_key_ignores_obs_flags(self):
        base = history.run_key("profile", ["profile", "505.mcf_r"])
        observed = history.run_key(
            "profile",
            ["profile", "505.mcf_r", "--obs", "json", "--trace-out", "x"],
        )
        assert base == observed

    def test_key_differs_across_workloads(self):
        assert history.run_key("profile", ["profile", "505.mcf_r"]) != \
            history.run_key("profile", ["profile", "541.leela_r"])

    def test_recorded_runs_share_key_across_obs_modes(self, tmp_path):
        first = history.record_run(make_manifest(), tmp_path)
        manifest = make_manifest()
        manifest["argv"] = [
            "profile", "505.mcf_r", "--obs", "json", "--trace-out", "t",
        ]
        second = history.record_run(manifest, tmp_path)
        assert first.run_key == second.run_key
