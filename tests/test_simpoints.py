"""Tests for the SimPoint-style interval analysis."""

import numpy as np
import pytest

from repro.core.simpoints import find_simpoints
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def analysis():
    return find_simpoints("541.leela_r", instructions=100_000,
                          interval_instructions=5_000)


class TestFindSimpoints:
    def test_weights_sum_to_one(self, analysis):
        total = sum(point.weight for point in analysis.simpoints)
        assert total == pytest.approx(1.0)

    def test_intervals_in_range(self, analysis):
        for point in analysis.simpoints:
            assert 0 <= point.interval < analysis.n_intervals

    def test_speedup_matches_phase_count(self, analysis):
        assert analysis.speedup == pytest.approx(
            analysis.n_intervals / analysis.n_phases
        )

    def test_stationary_workload_has_few_phases(self, analysis):
        """Our workload models are statistically stationary, so phase
        detection must not hallucinate many phases."""
        assert analysis.n_phases <= 3

    def test_assignment_covers_all_intervals(self, analysis):
        assert analysis.phase_assignment.shape == (analysis.n_intervals,)

    def test_estimate_weighted_average(self, analysis):
        values = np.arange(analysis.n_intervals, dtype=float)
        estimate = analysis.estimate(values)
        assert 0 <= estimate <= analysis.n_intervals

    def test_estimate_constant_signal_exact(self, analysis):
        values = np.full(analysis.n_intervals, 7.5)
        assert analysis.estimate(values) == pytest.approx(7.5)

    def test_estimate_shape_checked(self, analysis):
        with pytest.raises(AnalysisError):
            analysis.estimate(np.zeros(3))

    def test_deterministic(self):
        first = find_simpoints("505.mcf_r", instructions=60_000,
                               interval_instructions=5_000, seed=3)
        second = find_simpoints("505.mcf_r", instructions=60_000,
                                interval_instructions=5_000, seed=3)
        assert first.simpoints == second.simpoints

    def test_too_few_intervals_rejected(self):
        with pytest.raises(AnalysisError):
            find_simpoints("505.mcf_r", instructions=10_000,
                           interval_instructions=10_000)

    def test_estimates_stationary_cpi_signal(self):
        """End-to-end: simpoint-weighted per-interval mispredict rates
        match the full-window rate for a stationary workload."""
        from repro.workloads.spec import get_workload
        from repro.workloads.synthesis import synthesize_trace

        analysis = find_simpoints("541.leela_r", instructions=100_000,
                                  interval_instructions=5_000)
        trace = synthesize_trace(get_workload("541.leela_r"), 100_000, seed=2017)
        per_interval = np.array([
            chunk.mean()
            for chunk in np.array_split(
                trace.branch_taken.astype(float), analysis.n_intervals
            )
        ])
        estimate = analysis.estimate(per_interval)
        assert estimate == pytest.approx(per_interval.mean(), abs=0.05)
