"""Tests for similarity, subsetting, the score database and validation."""

import numpy as np
import pytest

from repro.core.similarity import analyze_similarity
from repro.core.specdb import (
    COMMERCIAL_SYSTEMS,
    CommercialSystem,
    published_speedups,
)
from repro.core.subsetting import PAPER_SUBSETS, select_subset, subset_suite
from repro.core.validation import random_subset_errors, validate_subset
from repro.errors import AnalysisError
from repro.perf.counters import BRANCH_METRICS
from repro.workloads.spec import Suite, workloads_in_suite

RATE_INT = Suite.SPEC2017_RATE_INT


class TestAnalyzeSimilarity:
    def test_result_structure(self, suite_results):
        result = suite_results[RATE_INT]
        assert result.scores.shape[0] == 10
        assert result.distances.shape == (10, 10)
        assert result.tree.n_leaves == 10
        assert 0.5 < result.variance_covered <= 1.0

    def test_kaiser_default(self, suite_results):
        result = suite_results[RATE_INT]
        assert result.n_components == result.pca.kaiser_components

    def test_explicit_component_count(self, profiler):
        names = [s.name for s in workloads_in_suite(RATE_INT)]
        result = analyze_similarity(names, n_components=3, profiler=profiler)
        assert result.scores.shape[1] == 3

    def test_metric_restriction(self, profiler):
        names = [s.name for s in workloads_in_suite(RATE_INT)]
        result = analyze_similarity(
            names, metrics=BRANCH_METRICS, profiler=profiler
        )
        assert result.matrix.n_features == len(BRANCH_METRICS) * 7

    def test_distance_symmetric_and_self_zero(self, suite_results):
        result = suite_results[RATE_INT]
        a, b = result.workloads[0], result.workloads[3]
        assert result.distance_between(a, b) == pytest.approx(
            result.distance_between(b, a)
        )
        assert result.distance_between(a, a) == 0.0

    def test_distance_unknown_raises(self, suite_results):
        with pytest.raises(AnalysisError):
            suite_results[RATE_INT].distance_between("a", "b")

    def test_dendrogram_contains_all_leaves(self, suite_results):
        text = suite_results[RATE_INT].dendrogram().text
        for name in suite_results[RATE_INT].workloads:
            assert name in text

    def test_representatives_counts(self, suite_results):
        result = suite_results[RATE_INT]
        for k in (1, 3, 5):
            assert len(result.representatives_for(k)) == k


class TestSubsetting:
    def test_select_subset_structure(self, suite_results):
        subset = select_subset(suite_results[RATE_INT], 3)
        assert subset.k == 3
        assert len(subset.clusters) == 3
        assert sum(len(c) for c in subset.clusters) == 10
        for representative, cluster in zip(subset.subset, subset.clusters):
            assert representative in cluster

    def test_threshold_separates_k_clusters(self, suite_results):
        result = suite_results[RATE_INT]
        subset = select_subset(result, 3)
        clusters = result.tree.clusters_at(subset.threshold)
        assert len(clusters) == 3

    def test_time_reduction_in_paper_band(self):
        """Table V reports 4.5-6.3x; our models reproduce that order."""
        for suite in PAPER_SUBSETS:
            subset = subset_suite(suite, k=3)
            assert 2.5 <= subset.time_reduction <= 10.0, suite

    def test_k_bounds(self, suite_results):
        with pytest.raises(AnalysisError):
            select_subset(suite_results[RATE_INT], 0)
        with pytest.raises(AnalysisError):
            select_subset(suite_results[RATE_INT], 99)

    def test_k_equals_n_gives_everything(self, suite_results):
        subset = select_subset(suite_results[RATE_INT], 10)
        assert sorted(subset.subset) == sorted(suite_results[RATE_INT].workloads)
        assert subset.time_reduction == pytest.approx(1.0)

    def test_paper_subset_members_exist(self):
        from repro.workloads.spec import get_workload

        for suite, names in PAPER_SUBSETS.items():
            for name in names:
                assert get_workload(name).suite == suite


class TestSpecDb:
    def test_every_system_scores_every_benchmark(self, profiler):
        names = [s.name for s in workloads_in_suite(RATE_INT)]
        db = published_speedups(names, profiler=profiler)
        assert len(db) == len(COMMERCIAL_SYSTEMS)
        for speedups in db.values():
            assert sorted(speedups) == sorted(names)
            assert all(v > 0 for v in speedups.values())

    def test_speedups_deterministic(self, profiler):
        names = [s.name for s in workloads_in_suite(RATE_INT)]
        first = published_speedups(names, profiler=profiler)
        second = published_speedups(names, profiler=profiler)
        assert first == second

    def test_memory_bound_benchmarks_suffer_on_saturated_systems(self, profiler):
        db = published_speedups(["505.mcf_r", "525.x264_r"], profiler=profiler)
        saturated = db["sys-f-entry-server"]
        # x264 (compute) retains much more of its speedup than mcf
        # (memory-bound) on a bandwidth-starved box.
        assert saturated["525.x264_r"] > saturated["505.mcf_r"]

    def test_cache_heavy_system_helps_cache_bound_benchmarks(self, profiler):
        db = published_speedups(["520.omnetpp_r", "548.exchange2_r"], profiler=profiler)
        gain = {
            b: db["sys-c-bigcache-server"][b] / db["sys-f-entry-server"][b]
            for b in ("520.omnetpp_r", "548.exchange2_r")
        }
        assert gain["520.omnetpp_r"] > gain["548.exchange2_r"]

    def test_zero_noise_system(self):
        system = CommercialSystem("det", frequency_ratio=1.0, noise=0.0)
        assert system._noise_factor("x") == 1.0

    def test_validation_of_system_parameters(self):
        with pytest.raises(AnalysisError):
            CommercialSystem("bad", frequency_ratio=0.0)
        with pytest.raises(AnalysisError):
            CommercialSystem("bad", frequency_ratio=1.0, noise=0.9)
        with pytest.raises(AnalysisError):
            CommercialSystem("bad", frequency_ratio=1.0, bandwidth_saturation=-1)


class TestValidation:
    def test_validation_structure(self, profiler):
        subset = subset_suite(RATE_INT, k=3)
        result = validate_subset(RATE_INT, subset.subset, profiler=profiler)
        assert len(result.systems) == len(COMMERCIAL_SYSTEMS)
        assert 0.0 <= result.mean_error <= result.max_error
        assert result.accuracy == pytest.approx(1.0 - result.mean_error)

    def test_identified_subsets_reach_paper_accuracy(self, profiler):
        """The paper's headline: >= 93% accuracy from ~1/3 of the suite
        (mean error over systems <= ~11% per sub-suite)."""
        for suite in PAPER_SUBSETS:
            subset = subset_suite(suite, k=3)
            weights = [len(c) for c in subset.clusters]
            result = validate_subset(
                suite, subset.subset, profiler=profiler, weights=weights
            )
            assert result.mean_error <= 0.12, suite

    def test_full_suite_subset_has_zero_error(self, profiler):
        names = [s.name for s in workloads_in_suite(RATE_INT)]
        result = validate_subset(RATE_INT, names, profiler=profiler)
        assert result.mean_error == pytest.approx(0.0, abs=1e-9)

    def test_unknown_subset_member_rejected(self, profiler):
        with pytest.raises(AnalysisError):
            validate_subset(RATE_INT, ["638.imagick_s"], profiler=profiler)

    def test_weight_length_checked(self, profiler):
        with pytest.raises(AnalysisError):
            validate_subset(
                RATE_INT, ["505.mcf_r"], weights=[1, 2], profiler=profiler
            )

    def test_random_subsets_deterministic_per_seed(self, profiler):
        first = random_subset_errors(RATE_INT, 3, n_sets=2, seed=11, profiler=profiler)
        second = random_subset_errors(RATE_INT, 3, n_sets=2, seed=11, profiler=profiler)
        assert [r.subset for r in first] == [r.subset for r in second]

    def test_random_subsets_size_checked(self, profiler):
        with pytest.raises(AnalysisError):
            random_subset_errors(RATE_INT, 99, profiler=profiler)

    def test_identified_beats_average_random_on_int(self, profiler):
        """Table VI's qualitative claim for the INT suites."""
        subset = subset_suite(RATE_INT, k=3)
        weights = [len(c) for c in subset.clusters]
        identified = validate_subset(
            RATE_INT, subset.subset, profiler=profiler, weights=weights
        ).mean_error
        random_mean = np.mean(
            [
                r.mean_error
                for r in random_subset_errors(
                    RATE_INT, 3, n_sets=10, seed=3, profiler=profiler
                )
            ]
        )
        assert identified < random_mean


# ----------------------------------------------------------------------
# incremental extension (extend/impact/revalidate)
# ----------------------------------------------------------------------


class TestExtendSimilarity:
    def test_one_shot_analysis_identical_in_both_modes(self, profiler):
        names = [s.name for s in workloads_in_suite(RATE_INT)]
        incremental = analyze_similarity(
            names, profiler=profiler, analysis="incremental"
        )
        batch = analyze_similarity(names, profiler=profiler, analysis="batch")
        assert (incremental.scores == batch.scores).all()
        assert (incremental.distances == batch.distances).all()
        assert (incremental.tree.merges == batch.tree.merges).all()
        assert incremental.analysis_mode == "incremental"
        assert batch.analysis_mode == "batch"
        assert incremental.engine is not None and incremental.engine.fitted
        assert batch.engine is None

    def test_extend_appends_one_workload(self, profiler):
        from repro.core.similarity import extend_similarity

        names = [s.name for s in workloads_in_suite(RATE_INT)]
        base = analyze_similarity(
            names[:-1], profiler=profiler, analysis="incremental"
        )
        extended = extend_similarity(base, names[-1], profiler=profiler)
        assert extended.workloads == tuple(names)
        n = len(names)
        assert extended.distances.shape == (n, n)
        assert np.allclose(extended.distances, extended.distances.T)
        assert (np.diag(extended.distances) == 0.0).all()
        assert extended.tree.labels == tuple(names)

    def test_extend_duplicate_raises(self, profiler):
        from repro.core.similarity import extend_similarity

        names = [s.name for s in workloads_in_suite(RATE_INT)]
        base = analyze_similarity(names, profiler=profiler)
        with pytest.raises(AnalysisError, match="already in the analysis"):
            extend_similarity(base, names[0], profiler=profiler)

    def test_batch_result_extends_via_exact_refit(self, profiler):
        from repro.core.similarity import extend_similarity

        names = [s.name for s in workloads_in_suite(RATE_INT)]
        base = analyze_similarity(
            names[:-1], profiler=profiler, analysis="batch"
        )
        extended = extend_similarity(base, names[-1], profiler=profiler)
        full = analyze_similarity(names, profiler=profiler, analysis="batch")
        assert (extended.scores == full.scores).all()
        assert (extended.distances == full.distances).all()

    def test_extended_distances_carry_over_plus_one_exact_row(self, profiler):
        from repro.core.similarity import extend_similarity
        from repro.stats.distance import euclidean_distance_matrix

        names = [s.name for s in workloads_in_suite(RATE_INT)]
        base = analyze_similarity(
            names[:-1], profiler=profiler, analysis="incremental"
        )
        extended = extend_similarity(base, names[-1], profiler=profiler)
        # Existing pairwise distances are carried over verbatim; only
        # the appended row is computed, from the current scores.
        assert (extended.distances[:-1, :-1] == base.distances).all()
        recomputed = euclidean_distance_matrix(extended.scores)
        assert np.allclose(extended.distances[-1], recomputed[-1], atol=1e-9)
        assert np.allclose(extended.distances[:, -1], recomputed[:, -1], atol=1e-9)


class TestExtendSubset:
    def test_extend_subset_keeps_k_and_reports_impact(self, profiler):
        from repro.core.subsetting import extend_subset, subset_impact

        names = [s.name for s in workloads_in_suite(RATE_INT)]
        base_similarity = analyze_similarity(
            names[:-1], profiler=profiler, analysis="incremental"
        )
        before = select_subset(base_similarity, 3)
        after = extend_subset(before, names[-1])
        assert after.k == 3
        assert len(after.subset) == 3
        assert set(after.similarity.workloads) == set(names)
        impact = subset_impact(before, after)
        assert set(impact) == {
            "added", "removed", "kept", "subset_changed",
            "clusters_changed", "time_reduction_before",
            "time_reduction_after",
        }
        assert sorted(impact["kept"] + impact["added"]) == sorted(after.subset)
        assert impact["subset_changed"] == (
            set(before.subset) != set(after.subset)
        )


class TestRevalidateSubset:
    def test_same_subset_revalidates_bit_identically(self, profiler):
        from repro.core.validation import revalidate_subset

        subset = subset_suite(RATE_INT, k=3)
        first = validate_subset(RATE_INT, subset.subset, profiler=profiler)
        assert first.scores is not None
        again = revalidate_subset(first, subset.subset)
        assert again.mean_error == first.mean_error
        assert again.max_error == first.max_error
        assert [s.error for s in again.systems] == [
            s.error for s in first.systems
        ]

    def test_changed_subset_rescored_without_reprofiling(self, profiler):
        from repro.core.validation import revalidate_subset

        names = [s.name for s in workloads_in_suite(RATE_INT)]
        first = validate_subset(RATE_INT, names[:3], profiler=profiler)
        swapped = revalidate_subset(first, names[1:4])
        reference = validate_subset(RATE_INT, names[1:4], profiler=profiler)
        assert swapped.subset == tuple(names[1:4])
        assert [s.error for s in swapped.systems] == [
            s.error for s in reference.systems
        ]

    def test_unknown_benchmark_rejected(self, profiler):
        from repro.core.validation import revalidate_subset

        subset = subset_suite(RATE_INT, k=3)
        result = validate_subset(RATE_INT, subset.subset, profiler=profiler)
        with pytest.raises(AnalysisError, match="not in"):
            revalidate_subset(result, ("nonexistent",))
