"""Fused multi-machine replay: knob, parity oracle, spill tier, crashes.

The fused engine (:mod:`repro.uarch.fused`) promises **bit-identical**
reports to independent per-machine replay — the property suite here is
the oracle that backs the claim, driven by the shared
:mod:`tests.parity` harness over randomized geometries, warm-up
fractions and seed scopes.  The spill-tier tests cover the second half
of the tentpole: traces evicted from the resident LRU survive on disk
and come back memory-mapped and bit-identical, with corruption
degrading to resynthesis.  The executor tests pin the fused crash
contract: a batch that dies names *every* pair it carried.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.parity import (
    assert_reports_identical,
    rng_for,
    sample_machine_batch,
    sample_warmup,
    sample_window,
    sample_workload,
    traces_equal,
)

from repro.errors import ConfigurationError, ExecutionError
from repro.perf.diskcache import cache_key
from repro.perf.profiler import Profiler
from repro.perf.trace_cache import (
    SPILL_BYTES_ENV,
    SPILL_DIR_ENV,
    TraceCache,
    trace_key,
)
from repro.perf.trace_engine import profile_trace, profile_trace_batch
from repro.uarch.fused import (
    REPLAY_ENV,
    REPLAY_MODES,
    default_replay,
    resolve_replay,
    validate_replay,
)
from repro.uarch.machine import PAPER_MACHINE_NAMES, get_machine, paper_machines
from repro.workloads.spec import get_workload
from repro.workloads.synthesis import synthesize_trace

MCF = get_workload("505.mcf_r")
SKYLAKE = get_machine("skylake-i7-6700")


class TestReplayKnob:
    """Selection, validation and cache keying of the replay knob."""

    def test_validate_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            validate_replay("parallel")
        with pytest.raises(ConfigurationError):
            resolve_replay("batched")
        assert set(REPLAY_MODES) == {"independent", "fused"}

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(REPLAY_ENV, raising=False)
        assert default_replay() == "fused"
        assert resolve_replay(None) == "fused"
        monkeypatch.setenv(REPLAY_ENV, "independent")
        assert default_replay() == "independent"
        assert resolve_replay(None) == "independent"
        # An explicit choice still beats the environment.
        assert resolve_replay("fused") == "fused"
        monkeypatch.setenv(REPLAY_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            default_replay()

    def test_profiler_resolves_replay_at_init(self, monkeypatch):
        monkeypatch.delenv(REPLAY_ENV, raising=False)
        assert Profiler(engine="trace").replay == "fused"
        assert (
            Profiler(engine="trace", replay="independent").replay
            == "independent"
        )
        monkeypatch.setenv(REPLAY_ENV, "independent")
        assert Profiler(engine="trace").replay == "independent"
        with pytest.raises(ConfigurationError):
            Profiler(engine="trace", replay="nope")

    def test_cli_flag_threads_into_profiler(self, monkeypatch):
        monkeypatch.delenv(REPLAY_ENV, raising=False)
        from repro.cli import _make_profiler, build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "profile", "505.mcf_r", "--engine", "trace",
                "--replay", "independent", "--no-disk-cache",
            ]
        )
        assert _make_profiler(args).replay == "independent"
        args = parser.parse_args(
            ["profile", "505.mcf_r", "--engine", "trace", "--no-disk-cache"]
        )
        assert _make_profiler(args).replay == "fused"

    def test_cache_key_distinguishes_replays_for_trace_only(self):
        trace_keys = {
            cache_key(MCF, SKYLAKE, "trace", 1000, 1, replay=replay)
            for replay in REPLAY_MODES
        }
        assert len(trace_keys) == len(REPLAY_MODES)
        analytic_keys = {
            cache_key(MCF, SKYLAKE, "analytic", 1000, 1, replay=replay)
            for replay in REPLAY_MODES
        }
        assert len(analytic_keys) == 1


class TestFusedParity:
    """Fused vs. independent replay must be bit-identical, always.

    Randomized-case budget (tests/parity.py contract): 20 trials with
    2–5 machines each contribute ~70 report-level parity cases on top
    of the kernel-parity suites.
    """

    def test_randomized_batches_match_independent(self):
        for trial in range(20):
            rnd = rng_for("fused-batch", trial)
            spec = sample_workload(rnd)
            machines = sample_machine_batch(rnd, rnd.choice([2, 3, 4, 5]))
            window = sample_window(rnd)
            warmup = sample_warmup(rnd)
            scope = rnd.choice(["geometry", "machine"])
            fused = profile_trace_batch(
                spec,
                machines,
                instructions=window,
                warmup_fraction=warmup,
                kernel="vector",
                seed_scope=scope,
                replay="fused",
            )
            for machine, got in zip(machines, fused):
                want = profile_trace(
                    spec,
                    machine,
                    instructions=window,
                    warmup_fraction=warmup,
                    kernel="vector",
                    seed_scope=scope,
                    replay="independent",
                )
                assert_reports_identical(
                    got, want,
                    f"trial={trial} scope={scope} warmup={warmup} "
                    f"window={window} machine={machine.name}",
                )

    def test_paper_machine_sweep_is_bit_identical(self):
        machines = paper_machines()
        fused = profile_trace_batch(
            MCF, machines, instructions=5_000, kernel="vector",
            replay="fused",
        )
        for machine, got in zip(machines, fused):
            want = profile_trace(
                MCF, machine, instructions=5_000, kernel="vector",
                replay="independent",
            )
            assert_reports_identical(got, want, machine.name)

    def test_single_machine_batch_degenerates_to_profile_trace(self):
        (got,) = profile_trace_batch(
            MCF, [SKYLAKE], instructions=3_000, kernel="vector",
            replay="fused",
        )
        want = profile_trace(
            MCF, SKYLAKE, instructions=3_000, kernel="vector",
            replay="independent",
        )
        assert_reports_identical(got, want)

    def test_scalar_kernel_report_unchanged_by_replay_knob(self):
        # The fused batch path requires the vector kernels; under the
        # scalar oracle the knob must be a no-op, not an error.
        for replay in REPLAY_MODES:
            got = profile_trace(
                MCF, SKYLAKE, instructions=2_000, kernel="scalar",
                replay=replay,
            )
            want = profile_trace(
                MCF, SKYLAKE, instructions=2_000, kernel="vector",
                replay="independent",
            )
            assert_reports_identical(got, want, f"scalar/{replay}")

    def test_batch_order_is_input_order(self):
        machines = [get_machine(name) for name in PAPER_MACHINE_NAMES]
        reports = profile_trace_batch(
            MCF, machines, instructions=2_000, kernel="vector",
            replay="fused",
        )
        assert [r.machine for r in reports] == [m.name for m in machines]


class TestSpillTier:
    """The memory-mapped spill tier under eviction, damage and clear()."""

    def _spilling_cache(self, tmp_path, **kwargs):
        kwargs.setdefault("capacity_bytes", 100_000)  # one ~82 KB trace
        return TraceCache(spill_dir=tmp_path / "spill", **kwargs)

    def _synthesize(self, cache, seed):
        return cache.get_or_synthesize(
            MCF, 20_000, seed=seed, line_bytes=64, page_bytes=4096
        )

    def test_evicted_trace_returns_memory_mapped_and_bit_identical(
        self, tmp_path
    ):
        cache = self._spilling_cache(tmp_path)
        first = self._synthesize(cache, seed=1)
        self._synthesize(cache, seed=2)  # evicts seed=1 to the spill tier
        info = cache.stats()
        assert info.evictions == 1
        assert info.spills == 1
        assert info.spilled_entries == 1
        assert info.spilled_bytes > 0
        rehit = self._synthesize(cache, seed=1)
        info = cache.stats()
        assert info.spill_hits == 1
        assert info.misses == 2  # a spill hit is *not* a synthesis
        assert traces_equal(first, rehit)
        assert isinstance(rehit.data_addresses, np.memmap)
        assert not rehit.data_addresses.flags.writeable
        assert rehit.instructions == first.instructions

    def test_spill_hit_counts_toward_hit_rate(self, tmp_path):
        cache = self._spilling_cache(tmp_path)
        self._synthesize(cache, seed=1)
        self._synthesize(cache, seed=2)
        self._synthesize(cache, seed=1)  # spill hit
        info = cache.stats()
        assert info.hit_rate == pytest.approx(1.0 / 3.0)

    def test_corrupted_spill_entry_resynthesizes_not_crashes(self, tmp_path):
        cache = self._spilling_cache(tmp_path)
        self._synthesize(cache, seed=1)
        self._synthesize(cache, seed=2)
        for npy in (tmp_path / "spill").rglob("*.npy"):
            npy.write_bytes(b"not a numpy file")
        before = cache.stats()
        again = self._synthesize(cache, seed=1)
        info = cache.stats()
        assert info.misses == before.misses + 1  # resynthesized
        assert info.spill_hits == before.spill_hits
        # The corrupt entry was dropped; re-inserting seed=1 evicted
        # seed=2, whose (fresh) spill replaces it one-for-one.
        assert info.spills == before.spills + 1
        assert info.spilled_entries == before.spilled_entries
        fresh = synthesize_trace(
            MCF, 20_000, seed=1, line_bytes=64, page_bytes=4096
        )
        assert traces_equal(again, fresh)

    def test_missing_spill_file_resynthesizes(self, tmp_path):
        cache = self._spilling_cache(tmp_path)
        self._synthesize(cache, seed=1)
        self._synthesize(cache, seed=2)
        victim = next((tmp_path / "spill").rglob("branch_taken.npy"))
        victim.unlink()
        again = self._synthesize(cache, seed=1)
        assert cache.stats().misses == 3
        fresh = synthesize_trace(
            MCF, 20_000, seed=1, line_bytes=64, page_bytes=4096
        )
        assert traces_equal(again, fresh)

    def test_two_tier_byte_accounting_is_separate_and_bounded(self, tmp_path):
        cache = self._spilling_cache(tmp_path, capacity_bytes=180_000)
        for seed in range(6):
            self._synthesize(cache, seed=seed)
            info = cache.stats()
            assert info.resident_bytes <= 180_000
        info = cache.stats()
        assert info.evictions == info.spills > 0
        # Spilled bytes account exactly the evicted traces, separately
        # from residency (nothing is double-counted).
        per_trace = info.resident_bytes // info.entries
        assert info.spilled_bytes == info.spills * per_trace
        on_disk = sum(
            f.stat().st_size for f in (tmp_path / "spill").rglob("*.npy")
        )
        assert on_disk >= info.spilled_bytes  # .npy headers add a little

    def test_spill_capacity_evicts_oldest_spill_files(self, tmp_path):
        # Room for two spilled traces (~82 KB each): spilling a third
        # must unlink the oldest entry's files and unaccount its bytes.
        cache = self._spilling_cache(
            tmp_path, spill_capacity_bytes=170_000
        )
        for seed in range(4):  # seeds 0..2 get evicted+spilled in order
            self._synthesize(cache, seed=seed)
        info = cache.stats()
        assert info.spills == 3
        assert info.spilled_entries == 2  # oldest spill evicted
        assert info.spilled_bytes <= 170_000
        dirs = [p for p in (tmp_path / "spill").iterdir() if p.is_dir()]
        assert len(dirs) == 2
        # The survivor entries still round-trip.
        assert cache.get(trace_key(MCF, 20_000, 1, 64, 4096)) is None
        rehit = self._synthesize(cache, seed=2)
        assert cache.stats().spill_hits == 1
        assert traces_equal(
            rehit,
            synthesize_trace(MCF, 20_000, seed=2, line_bytes=64,
                             page_bytes=4096),
        )

    def test_oversized_trace_is_not_spilled(self, tmp_path):
        cache = self._spilling_cache(
            tmp_path, spill_capacity_bytes=10_000
        )
        self._synthesize(cache, seed=1)
        self._synthesize(cache, seed=2)
        info = cache.stats()
        assert info.evictions == 1
        assert info.spills == 0
        assert not (tmp_path / "spill").exists()

    def test_clear_purges_spill_tier_and_zeroes_gauge(self, tmp_path):
        # Satellite 3, mirroring the PR 6 resident_bytes fix: clear()
        # must drop the spill files, the index *and* the registry gauge
        # — otherwise a cleared cache resurrects pre-clear traces and
        # manifests report disk the cache no longer holds.
        from repro import obs

        obs.metrics.reset()
        obs.enable()
        try:
            cache = self._spilling_cache(tmp_path)
            self._synthesize(cache, seed=1)
            self._synthesize(cache, seed=2)
            assert obs.snapshot()["gauges"]["trace_cache.spilled_bytes"] > 0
            cache.clear()
            assert obs.snapshot()["gauges"]["trace_cache.spilled_bytes"] == 0
            assert obs.snapshot()["gauges"]["trace_cache.resident_bytes"] == 0
            info = cache.stats()
            assert info.spilled_entries == 0 and info.spilled_bytes == 0
            assert not any((tmp_path / "spill").iterdir())
            # No resurrection: the next lookup is a synthesis.
            self._synthesize(cache, seed=1)
            assert cache.stats().misses == 1
            assert cache.stats().spill_hits == 0
        finally:
            obs.disable()
            obs.metrics.reset()

    def test_spill_disabled_by_default_eviction_means_resynthesis(
        self, monkeypatch
    ):
        monkeypatch.delenv(SPILL_DIR_ENV, raising=False)
        cache = TraceCache(capacity_bytes=100_000)
        assert cache.spill_dir is None
        self._synthesize(cache, seed=1)
        self._synthesize(cache, seed=2)
        self._synthesize(cache, seed=1)
        info = cache.stats()
        assert info.misses == 3
        assert info.spills == 0 and info.spill_hits == 0

    def test_env_overrides_and_validation(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path / "envspill"))
        monkeypatch.setenv(SPILL_BYTES_ENV, "54321")
        cache = TraceCache(capacity_bytes=100_000)
        assert cache.spill_dir == tmp_path / "envspill"
        assert cache.spill_capacity_bytes == 54321
        monkeypatch.setenv(SPILL_BYTES_ENV, "lots")
        with pytest.raises(ConfigurationError):
            TraceCache()
        monkeypatch.delenv(SPILL_BYTES_ENV, raising=False)
        with pytest.raises(ConfigurationError):
            TraceCache(spill_capacity_bytes=-1)


class TestSpillAdoption:
    """Cross-process spill adoption and incremental byte accounting."""

    def _spilling_cache(self, tmp_path, **kwargs):
        kwargs.setdefault("capacity_bytes", 100_000)
        return TraceCache(spill_dir=tmp_path / "spill", **kwargs)

    def _synthesize(self, cache, seed):
        return cache.get_or_synthesize(
            MCF, 20_000, seed=seed, line_bytes=64, page_bytes=4096
        )

    def test_byte_total_scans_the_directory_exactly_once(self, tmp_path):
        # The satellite guard: the spill tier's byte total is computed
        # by one construction-time directory scan and then maintained
        # incrementally — many inserts, evictions and a clear() must
        # not rescan (a regression to rescan-per-insert shows up here
        # as a climbing counter).
        cache = self._spilling_cache(tmp_path, spill_capacity_bytes=400_000)
        assert cache.stats().spill_scans == 1
        for seed in range(8):  # spills + spill-capacity evictions
            self._synthesize(cache, seed=seed)
        info = cache.stats()
        assert info.spills > 0
        assert info.spill_scans == 1
        on_disk = sum(
            f.stat().st_size
            for f in (tmp_path / "spill").rglob("*.npy")
        )
        # Incremental accounting agrees with the actual array payload
        # on disk (each .npy carries a small header on top).
        assert 0 < info.spilled_bytes <= on_disk
        cache.clear()
        assert cache.stats().spill_scans == 1

    def test_fresh_cache_adopts_existing_spill_entries(self, tmp_path):
        first = self._spilling_cache(tmp_path)
        original = self._synthesize(first, seed=1)
        self._synthesize(first, seed=2)  # evicts + spills seed=1
        spilled = first.stats().spilled_bytes
        assert spilled > 0
        # A second cache on the same directory — a resumed campaign's
        # fresh process — adopts the entry and its accounting without
        # help, and re-hits it instead of resynthesizing.
        second = self._spilling_cache(tmp_path)
        info = second.stats()
        assert info.spill_scans == 1
        assert info.spilled_entries == 1
        assert info.spilled_bytes == spilled
        rehit = self._synthesize(second, seed=1)
        info = second.stats()
        assert info.spill_hits == 1
        assert info.misses == 0
        assert traces_equal(original, rehit)

    def test_adopted_entries_evict_oldest_first(self, tmp_path):
        first = self._spilling_cache(tmp_path, spill_capacity_bytes=400_000)
        for seed in range(4):  # seeds 0..2 spill, in eviction order
            self._synthesize(first, seed=seed)
        assert first.stats().spilled_entries == 3
        # Adopting under a tighter budget keeps the *newest* entries,
        # dropping the oldest spill files from disk.
        second = self._spilling_cache(
            tmp_path, spill_capacity_bytes=170_000
        )
        info = second.stats()
        assert info.spilled_entries == 2
        dirs = [
            p for p in (tmp_path / "spill").iterdir() if p.is_dir()
        ]
        assert len(dirs) == 2
        assert second.get_or_synthesize(
            MCF, 20_000, seed=0, line_bytes=64, page_bytes=4096
        ) is not None
        assert second.stats().misses == 1  # oldest was dropped

    def test_unreadable_entries_are_unlinked_not_adopted(self, tmp_path):
        first = self._spilling_cache(tmp_path)
        self._synthesize(first, seed=1)
        self._synthesize(first, seed=2)
        spill_root = tmp_path / "spill"
        (entry,) = [p for p in spill_root.iterdir() if p.is_dir()]
        (entry / "key.json").write_text("not json")
        (spill_root / "stray").mkdir()  # no sidecar at all
        second = self._spilling_cache(tmp_path)
        info = second.stats()
        assert info.spill_scans == 1
        assert info.spilled_entries == 0 and info.spilled_bytes == 0
        assert [p for p in spill_root.iterdir() if p.is_dir()] == []


class TestFusedExecutorCrash:
    """Satellite 4: a dying fused batch names every pair it carried."""

    WORKLOADS = ("505.mcf_r", "541.leela_r")
    MACHINES = ("skylake-i7-6700", "sparc-t4")

    def _pairs(self):
        return [
            (get_workload(w), get_machine(m))
            for w in self.WORKLOADS
            for m in self.MACHINES
        ]

    def _crash_batches_for(self, monkeypatch, fail_on: str):
        import repro.perf.executor as mod

        real = mod.compute_reports

        def flaky(spec, configs, engine, **kwargs):
            if spec.name == fail_on:
                raise RuntimeError("simulated fused-batch crash")
            return real(spec, configs, engine, **kwargs)

        monkeypatch.setattr(mod, "compute_reports", flaky)

    def _profiler(self):
        # Explicit vector kernel + fused replay so the batch path stays
        # active under the scalar-/independent-oracle CI environments.
        return Profiler(
            engine="trace",
            trace_instructions=2_000,
            trace_kernel="vector",
            replay="fused",
        )

    def test_serial_fused_crash_names_every_pair_in_the_batch(
        self, monkeypatch
    ):
        from repro.perf.executor import ProfilingExecutor

        self._crash_batches_for(monkeypatch, fail_on="541.leela_r")
        executor = ProfilingExecutor(self._profiler(), jobs=1)
        with pytest.raises(ExecutionError) as excinfo:
            executor.run(self._pairs())
        message = str(excinfo.value)
        for machine in self.MACHINES:
            assert f"541.leela_r@{machine}" in message
            assert f"505.mcf_r@{machine}" not in message

    def test_worker_fused_crash_names_every_pair_in_the_batch(
        self, monkeypatch
    ):
        from repro.perf.executor import ProfilingExecutor

        self._crash_batches_for(monkeypatch, fail_on="505.mcf_r")
        # chunk_size=2 keeps each workload's machine pairs in one
        # fused chunk (workload_chunks dispatches workload-major).
        executor = ProfilingExecutor(
            self._profiler(), jobs=2, backend="thread", chunk_size=2
        )
        with pytest.raises(ExecutionError) as excinfo:
            executor.run(self._pairs())
        message = str(excinfo.value)
        for machine in self.MACHINES:
            assert f"505.mcf_r@{machine}" in message
            assert f"541.leela_r@{machine}" not in message

    def test_fused_sweep_matches_independent_sweep_through_executor(self):
        from repro.perf.executor import ProfilingExecutor

        def sweep(replay):
            profiler = Profiler(
                engine="trace",
                trace_instructions=2_000,
                trace_kernel="vector",
                replay=replay,
            )
            executor = ProfilingExecutor(profiler, jobs=2, backend="thread")
            return executor.run(self._pairs())

        fused = sweep("fused")
        independent = sweep("independent")
        for got, want in zip(fused, independent):
            assert_reports_identical(got, want, f"{want.workload}@{want.machine}")
