"""Tests for the design-space exploration extension."""

import pytest

from repro.core.designspace import (
    DesignVariant,
    evaluate_design_space,
    standard_design_space,
    subset_design_fidelity,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.uarch.machine import get_machine


@pytest.fixture(scope="module")
def variants():
    return standard_design_space()


@pytest.fixture(scope="module")
def evaluation(variants, profiler):
    return evaluate_design_space(
        ["505.mcf_r", "541.leela_r", "525.x264_r"], variants, profiler=profiler
    )


class TestStandardDesignSpace:
    def test_baseline_first(self, variants):
        assert variants[0].name == "baseline"

    def test_variant_names_unique(self, variants):
        names = [v.name for v in variants]
        assert len(names) == len(set(names))

    def test_machine_names_unique(self, variants):
        names = [v.machine.name for v in variants]
        assert len(names) == len(set(names))

    def test_llc_scaling(self, variants):
        base = get_machine("skylake-i7-6700")
        llc2x = next(v for v in variants if v.name == "llc-2x")
        assert llc2x.machine.l3.size_bytes == 2 * base.l3.size_bytes

    def test_no_l3_machine_skips_llc_variants(self):
        variants = standard_design_space("xeon-e5405")
        names = {v.name for v in variants}
        assert "llc-2x" not in names
        assert "l2-2x" in names

    def test_geometry_stays_valid(self, variants):
        for variant in variants:
            for cache in (variant.machine.l1d, variant.machine.l2):
                assert cache.size_bytes % (
                    cache.line_bytes * cache.associativity
                ) == 0


class TestEvaluateDesignSpace:
    def test_all_variants_scored(self, evaluation, variants):
        assert set(evaluation.speedups) == {
            v.name for v in variants if v.name != "baseline"
        }

    def test_speedups_positive(self, evaluation):
        assert all(v > 0 for v in evaluation.speedups.values())

    def test_improvements_never_slow_things_down(self, evaluation):
        for name in ("llc-2x", "l2-2x", "bigger-bp", "fast-mem", "stlb-4x"):
            assert evaluation.speedups[name] >= 0.999, name

    def test_llc_half_hurts_memory_bound(self, evaluation):
        assert evaluation.per_benchmark["llc-half"]["505.mcf_r"] <= 1.0

    def test_bigger_bp_helps_leela_most(self, evaluation):
        gains = evaluation.per_benchmark["bigger-bp"]
        assert gains["541.leela_r"] >= gains["525.x264_r"]

    def test_fast_mem_helps_mcf_most(self, evaluation):
        gains = evaluation.per_benchmark["fast-mem"]
        assert gains["505.mcf_r"] > gains["525.x264_r"]

    def test_ranking_and_best(self, evaluation):
        ranking = evaluation.ranking()
        assert evaluation.best() == ranking[0]
        values = [evaluation.speedups[n] for n in ranking]
        assert values == sorted(values, reverse=True)

    def test_requires_baseline_first(self, profiler):
        machine = get_machine("skylake-i7-6700")
        with pytest.raises(ConfigurationError):
            evaluate_design_space(
                ["505.mcf_r"], [DesignVariant("llc-2x", machine)],
                profiler=profiler,
            )

    def test_requires_workloads(self, variants, profiler):
        with pytest.raises(AnalysisError):
            evaluate_design_space([], variants, profiler=profiler)


class TestSubsetDesignFidelity:
    def test_full_subset_is_perfectly_faithful(self, profiler):
        names = ["505.mcf_r", "541.leela_r", "525.x264_r"]
        fidelity = subset_design_fidelity(names, names, profiler=profiler)
        assert fidelity.rank_correlation == pytest.approx(1.0)
        assert fidelity.best_choice_agrees
        assert fidelity.max_speedup_gap == pytest.approx(0.0)

    def test_representative_subset_agrees_on_winner(self, profiler):
        from repro.core.subsetting import subset_suite
        from repro.workloads.spec import Suite, workloads_in_suite

        names = [s.name for s in workloads_in_suite(Suite.SPEC2017_RATE_INT)]
        subset = subset_suite(Suite.SPEC2017_RATE_INT, 3)
        fidelity = subset_design_fidelity(
            names, list(subset.subset), profiler=profiler
        )
        assert fidelity.best_choice_agrees

    def test_subset_must_be_contained(self, profiler):
        with pytest.raises(AnalysisError):
            subset_design_fidelity(
                ["505.mcf_r"], ["999.ghost"], profiler=profiler
            )
