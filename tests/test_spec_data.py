"""Data-integrity tests over every registered benchmark model.

These verify that the models encode the paper's published facts:
Table I instruction counts and mixes, input-set multiplicities, the
rate/speed pairing, and the emerging-workload signatures.
"""

import math

import pytest

from repro.workloads.spec import Suite, all_workloads, get_workload, workloads_in_suite
from repro.workloads.spec2006 import PAPER_UNCOVERED, REMOVED_IN_2017, RETAINED_IN_2017
from repro.workloads.spec2017 import RATE_SPEED_PAIRS

ALL = all_workloads()

# Table I spot checks: (name, icount billions, loads %, stores %, branches %).
TABLE_I_ROWS = [
    ("600.perlbench_s", 2696, 27.20, 16.73, 18.16),
    ("602.gcc_s", 7226, 40.32, 15.67, 15.60),
    ("605.mcf_s", 1775, 18.55, 4.70, 12.53),
    ("625.x264_s", 12546, 37.21, 10.27, 4.59),
    ("657.xz_s", 8264, 13.34, 4.73, 8.21),
    ("505.mcf_r", 999, 17.42, 6.08, 11.54),
    ("523.xalancbmk_r", 1315, 34.26, 8.07, 33.26),
    ("541.leela_r", 2246, 14.28, 5.33, 8.95),
    ("603.bwaves_s", 66395, 31.00, 4.42, 13.00),
    ("607.cactubssn_s", 10976, 43.87, 9.50, 1.80),
    ("638.imagick_s", 66788, 18.16, 0.46, 9.30),
    ("507.cactubssn_r", 1322, 43.62, 9.53, 1.97),
    ("549.fotonik3d_r", 1288, 39.12, 12.07, 2.52),
    ("554.roms_r", 2609, 34.57, 7.57, 6.73),
]


@pytest.mark.parametrize("name,icount,loads,stores,branches", TABLE_I_ROWS)
def test_table1_facts_encoded(name, icount, loads, stores, branches):
    spec = get_workload(name)
    assert spec.icount_billions == pytest.approx(icount)
    assert spec.mix.load * 100 == pytest.approx(loads, abs=0.01)
    assert spec.mix.store * 100 == pytest.approx(stores, abs=0.01)
    assert spec.mix.branch * 100 == pytest.approx(branches, abs=0.01)


@pytest.mark.parametrize("spec", ALL, ids=lambda s: s.name)
class TestEverySpec:
    def test_mix_normalized(self, spec):
        mix = spec.mix
        total = mix.load + mix.store + mix.branch + mix.int_alu + mix.fp + mix.other
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_locality_profiles_valid(self, spec):
        assert spec.data_reuse.miss_ratio(512) >= 0.0
        assert spec.inst_reuse.miss_ratio(512) >= 0.0

    def test_pipeline_parameters_in_range(self, spec):
        assert 0.5 <= spec.ilp <= 6.0
        assert 1.0 <= spec.mlp <= 32.0

    def test_page_factors_physical(self, spec):
        assert 1.0 <= spec.data_page_factor <= 64.0
        assert 1.0 <= spec.inst_page_factor <= 64.0

    def test_footprint_positive(self, spec):
        assert spec.footprint_mb > 0

    def test_branch_taken_fraction_physical(self, spec):
        assert 0.3 <= spec.branches.taken_fraction <= 0.95


class TestRateSpeedPairing:
    def test_pairs_well_formed(self):
        for rate, speed in RATE_SPEED_PAIRS:
            rate_spec, speed_spec = get_workload(rate), get_workload(speed)
            assert rate_spec.suite.is_rate
            assert speed_spec.suite.is_speed
            assert rate_spec.label.rsplit("_", 1)[0] == speed_spec.label.rsplit("_", 1)[0]

    def test_pair_count(self):
        # 10 INT pairs and 9 FP pairs (508/510/511/526 are rate-only,
        # 628.pop2_s is speed-only).
        assert len(RATE_SPEED_PAIRS) == 19

    def test_rate_only_benchmarks(self):
        for name in ("508.namd_r", "510.parest_r", "511.povray_r", "526.blender_r"):
            assert get_workload(name).rate_partner is None

    def test_speed_icounts_at_least_rate(self):
        # Speed inputs are larger or equal; perlbench/leela/exchange2 are
        # the same size (per Table I).
        for rate, speed in RATE_SPEED_PAIRS:
            assert (
                get_workload(speed).icount_billions
                >= get_workload(rate).icount_billions * 0.99
            )

    def test_fp_speed_to_rate_icount_ratio_high(self):
        """The paper: speed/rate icount ratio ~8x for FP, ~2x for INT."""
        ratios_fp, ratios_int = [], []
        for rate, speed in RATE_SPEED_PAIRS:
            ratio = get_workload(speed).icount_billions / get_workload(rate).icount_billions
            if get_workload(rate).suite.is_floating_point:
                ratios_fp.append(ratio)
            else:
                ratios_int.append(ratio)
        assert 5.0 <= sum(ratios_fp) / len(ratios_fp) <= 12.0
        assert 1.2 <= sum(ratios_int) / len(ratios_int) <= 3.5


class TestInputSetData:
    @pytest.mark.parametrize(
        "name,count",
        [
            ("500.perlbench_r", 3),
            ("502.gcc_r", 5),
            ("525.x264_r", 3),
            ("557.xz_r", 2),
            ("503.bwaves_r", 2),
            ("603.bwaves_s", 2),
            ("403.gcc", 5),
        ],
    )
    def test_multi_input_benchmarks(self, name, count):
        assert len(get_workload(name).input_variants()) == count

    def test_cpu2006_gcc_inputs_spread_more_than_cpu2017(self):
        """The paper contrasts CPU2017 gcc's homogeneous inputs with the
        pronounced variation of the CPU2006 gcc inputs."""

        def spread(name):
            variants = get_workload(name).input_variants()
            ratios = [v.data_reuse.miss_ratio(4096) for v in variants]
            return max(ratios) - min(ratios)

        assert spread("403.gcc") > 2.0 * spread("502.gcc_r")


class TestCpu2006Metadata:
    def test_removed_and_retained_partition(self):
        removed = set(REMOVED_IN_2017)
        retained = set(RETAINED_IN_2017)
        assert not removed & retained
        all_2006 = {
            s.name for s in workloads_in_suite(Suite.SPEC2006_INT, Suite.SPEC2006_FP)
        }
        assert removed | retained <= all_2006

    def test_paper_uncovered_are_removed(self):
        assert set(PAPER_UNCOVERED) <= set(REMOVED_IN_2017)

    def test_retained_successors_exist(self):
        for successor in RETAINED_IN_2017.values():
            assert get_workload(successor).suite.is_cpu2017

    def test_2006_int_branchier_than_2017_int(self):
        """Phansalkar 2007 / the paper: CPU2006 INT averages ~20%
        branches, CPU2017 INT <= 15%."""

        def mean_branch(*suites):
            specs = workloads_in_suite(*suites)
            return sum(s.mix.branch for s in specs) / len(specs)

        b2006 = mean_branch(Suite.SPEC2006_INT)
        b2017 = mean_branch(Suite.SPEC2017_RATE_INT, Suite.SPEC2017_SPEED_INT)
        assert b2006 > 0.17
        assert b2017 < 0.15


class TestEmergingSignatures:
    def test_cassandra_instruction_side_pressure(self):
        """Scale-out signature: large I-footprint, terrible I-page locality."""
        cas = get_workload("cas-WA")
        spec_max = max(
            s.inst_reuse.miss_ratio(512)
            for s in workloads_in_suite(
                Suite.SPEC2017_RATE_INT, Suite.SPEC2017_RATE_FP
            )
        )
        assert cas.inst_reuse.miss_ratio(512) > 3.0 * spec_max
        assert cas.inst_page_factor < 4.0

    def test_pagerank_random_page_access(self):
        for name in ("pr-g1", "pr-g2"):
            assert get_workload(name).data_page_factor < 2.0

    def test_cc_lighter_than_pagerank(self):
        cc = get_workload("cc-g1")
        pr = get_workload("pr-g1")
        assert cc.data_reuse.miss_ratio(4096) < pr.data_reuse.miss_ratio(4096)

    def test_eda_pointer_chasing(self):
        for name in ("175.vpr", "300.twolf"):
            spec = get_workload(name)
            assert spec.data_page_factor < 4.0
            assert spec.domain == "EDA"
