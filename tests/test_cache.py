"""Unit and property tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.uarch.cache import Cache, CacheConfig, ReplacementPolicy, build_hierarchy


def make_cache(size=1024, line=64, assoc=2, policy=ReplacementPolicy.LRU, **kw):
    return Cache(CacheConfig(size, line, assoc, policy=policy), **kw)


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(32 << 10, 64, 8)
        assert config.num_sets == 64
        assert config.num_lines == 512

    @pytest.mark.parametrize(
        "size,line,assoc",
        [(0, 64, 8), (1024, 60, 8), (1024, 64, 0), (100, 64, 1)],
    )
    def test_invalid_geometry_rejected(self, size, line, assoc):
        with pytest.raises(ConfigurationError):
            CacheConfig(size, line, assoc)

    def test_non_power_of_two_sets_allowed(self):
        # Large LLC slices are often non-power-of-two (e.g. 30MB/20-way).
        config = CacheConfig(30 << 20, 64, 20)
        assert config.num_sets == 24576

    def test_describe(self):
        assert CacheConfig(32 << 10, 64, 8).describe() == "32KB/8-way/64B"
        assert CacheConfig(8 << 20, 64, 16).describe() == "8MB/16-way/64B"


class TestCacheBasics:
    def test_first_access_misses(self):
        cache = make_cache()
        assert cache.access(0x1000) is False
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x1000) is True
        assert cache.stats.hits == 1

    def test_same_line_different_bytes_hit(self):
        cache = make_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1001) is True
        assert cache.access(0x103F) is True

    def test_adjacent_line_misses(self):
        cache = make_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1040) is False

    def test_contains(self):
        cache = make_cache()
        cache.access(0x2000)
        assert cache.contains(0x2000)
        assert not cache.contains(0x4000)

    def test_flush_invalidates_but_keeps_stats(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.flush()
        assert not cache.contains(0x1000)
        assert cache.stats.accesses == 1

    def test_reset_clears_stats(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.reset()
        assert cache.stats.accesses == 0

    def test_stats_ratios(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_ratio == pytest.approx(0.5)
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_empty_stats_ratios_zero(self):
        cache = make_cache()
        assert cache.stats.miss_ratio == 0.0
        assert cache.stats.hit_ratio == 0.0


class TestLruReplacement:
    def test_lru_evicts_least_recent(self):
        # 2-way cache; fill one set with 2 lines, touch the first, insert
        # a third: the second must be the victim.
        cache = make_cache(size=8 * 64 * 2, line=64, assoc=2)
        sets = cache.config.num_sets
        a, b, c = 0, sets * 64, 2 * sets * 64  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_working_set_within_capacity_never_misses_after_warmup(self):
        cache = make_cache(size=64 * 64, line=64, assoc=4)
        lines = [i * 64 for i in range(32)]
        for address in lines:
            cache.access(address)
        cache.stats.reset()
        for _ in range(10):
            for address in lines:
                assert cache.access(address)
        assert cache.stats.misses == 0

    def test_streaming_never_hits(self):
        cache = make_cache(size=64 * 64, line=64)
        for i in range(1000):
            assert cache.access(i * 64) is False


class TestWriteHandling:
    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache(size=2 * 64, line=64, assoc=1)
        cache.access(0, is_write=True)
        cache.access(cache.config.num_sets * 64)  # conflicts, evicts dirty line
        assert cache.stats.writebacks >= 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=2 * 64, line=64, assoc=1)
        cache.access(0, is_write=False)
        cache.access(cache.config.num_sets * 64)
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=2 * 64, line=64, assoc=1)
        cache.access(0, is_write=False)
        cache.access(0, is_write=True)
        cache.access(cache.config.num_sets * 64)
        assert cache.stats.writebacks == 1


class TestHierarchy:
    def test_miss_propagates_to_next_level(self):
        l2 = make_cache(size=1 << 16, assoc=8, name="L2")
        l1 = Cache(CacheConfig(1 << 12, 64, 4), name="L1", next_level=l2)
        l1.access(0x5000)
        assert l2.stats.accesses == 1
        assert l2.stats.misses == 1

    def test_l1_hit_does_not_touch_l2(self):
        l2 = make_cache(size=1 << 16, assoc=8)
        l1 = Cache(CacheConfig(1 << 12, 64, 4), next_level=l2)
        l1.access(0x5000)
        l1.access(0x5000)
        assert l2.stats.accesses == 1

    def test_l2_captures_l1_conflict_victims(self):
        l2 = make_cache(size=1 << 16, assoc=16)
        l1 = Cache(CacheConfig(64 * 4, 64, 1), next_level=l2)
        lines = [i * l1.config.num_sets * 64 for i in range(8)]
        for _ in range(4):
            for address in lines:
                l1.access(address)
        # All lines fit easily in L2: after the first round L2 misses stop.
        assert l2.stats.misses == len(lines)

    def test_build_hierarchy_links_levels(self):
        caches = build_hierarchy(
            [CacheConfig(1 << 12, 64, 4), CacheConfig(1 << 16, 64, 8)],
            names=["L1", "L2"],
        )
        assert caches[0].next_level is caches[1]
        assert caches[1].next_level is None

    def test_build_hierarchy_validates(self):
        with pytest.raises(ConfigurationError):
            build_hierarchy([])
        with pytest.raises(ConfigurationError):
            build_hierarchy([CacheConfig(1 << 12)], names=["a", "b"])


class TestReplacementPolicies:
    @pytest.mark.parametrize(
        "policy", [ReplacementPolicy.LRU, ReplacementPolicy.FIFO, ReplacementPolicy.RANDOM]
    )
    def test_all_policies_bounded_occupancy(self, policy):
        cache = make_cache(size=16 * 64, line=64, assoc=4, policy=policy)
        rng = np.random.default_rng(0)
        for address in rng.integers(0, 1 << 20, 2000) * 64:
            cache.access(int(address))
        resident = int((cache._tags >= 0).sum())
        assert resident <= cache.config.num_lines

    def test_fifo_ignores_recency(self):
        # FIFO evicts the oldest arrival even if recently touched.
        cache = make_cache(size=2 * 64, line=64, assoc=2, policy=ReplacementPolicy.FIFO)
        sets = cache.config.num_sets
        a, b, c = 0, sets * 64, 2 * sets * 64
        cache.access(a)
        cache.access(b)
        cache.access(a)  # does not refresh under FIFO
        cache.access(c)  # evicts a (oldest arrival)
        assert not cache.contains(a)
        assert cache.contains(b)


class TestCacheProperties:
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_stats_invariants(self, addresses):
        cache = make_cache(size=1024, line=64, assoc=2)
        for address in addresses:
            cache.access(address)
        stats = cache.stats
        assert stats.accesses == len(addresses)
        assert stats.hits + stats.misses == stats.accesses
        assert stats.evictions <= stats.misses

    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_bigger_cache_never_misses_more_lru(self, addresses):
        # LRU inclusion property: a larger fully-associative LRU cache
        # never misses more than a smaller one on the same trace.
        small = make_cache(size=4 * 64, line=64, assoc=4)
        large = make_cache(size=16 * 64, line=64, assoc=16)
        for address in addresses:
            small.access(address)
            large.access(address)
        assert large.stats.misses <= small.stats.misses

    @given(st.lists(st.integers(0, 1 << 18), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_replay(self, addresses):
        first = make_cache()
        second = make_cache()
        for address in addresses:
            first.access(address)
            second.access(address)
        assert first.stats.misses == second.stats.misses
