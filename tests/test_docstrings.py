"""Quality gate: every public item carries a docstring.

The deliverable requires doc comments on every public API element; this
meta-test enforces it mechanically for all modules, public classes and
public functions of the package.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(item):
            for member_name, member in vars(item).items():
                if member_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not (
                    member.__doc__ and member.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
