"""Trace-engine tests, including agreement with the analytic engine."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.analytic import profile_analytic
from repro.perf.counters import SIMILARITY_METRICS, Metric
from repro.perf.trace_engine import ENGINE_AGREEMENT_TOLERANCES, profile_trace
from repro.uarch.machine import get_machine
from repro.workloads.spec import get_workload

SKYLAKE = get_machine("skylake-i7-6700")
WINDOW = 80_000

# Single source of truth for the engine-agreement envelope; the bounds
# live next to the engine so widening them is an explicit model change.
TOL = ENGINE_AGREEMENT_TOLERANCES


@pytest.fixture(scope="module")
def engines():
    """(analytic, trace) reports for a representative workload set."""
    names = ("505.mcf_r", "541.leela_r", "519.lbm_r", "507.cactubssn_r")
    result = {}
    for name in names:
        spec = get_workload(name)
        result[name] = (
            profile_analytic(spec, SKYLAKE),
            profile_trace(spec, SKYLAKE, instructions=WINDOW),
        )
    return result


class TestTraceReport:
    def test_all_metrics_present(self, engines):
        _, trace = engines["505.mcf_r"]
        for metric in SIMILARITY_METRICS:
            assert metric in trace.metrics

    def test_deterministic(self):
        spec = get_workload("541.leela_r")
        first = profile_trace(spec, SKYLAKE, instructions=20_000)
        second = profile_trace(spec, SKYLAKE, instructions=20_000)
        assert first.metrics == second.metrics

    def test_warmup_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            profile_trace(
                get_workload("541.leela_r"), SKYLAKE,
                instructions=1000, warmup_fraction=1.0,
            )

    def test_power_present_on_power_machine(self, engines):
        _, trace = engines["505.mcf_r"]
        assert trace.power is not None


class TestEngineAgreement:
    """The two engines model the same workloads; they must agree on L1
    behaviour tightly and on ordering everywhere.

    Known, documented divergences: the trace window truncates very long
    reuse distances (outer-level misses read slightly high) and the
    synthesized branch streams carry less learnable structure than the
    analytic pattern model assumes (mispredictions read ~2x high)."""

    def test_l1d_mpki_close(self, engines):
        for name, (analytic, trace) in engines.items():
            assert trace[Metric.L1D_MPKI] == pytest.approx(
                analytic[Metric.L1D_MPKI], **TOL["l1d_mpki"]
            ), name

    def test_l1i_mpki_close(self, engines):
        # The finite window leaves a ~1.5 MPKI warm-up floor on the
        # instruction side; agreement is absolute-with-floor.
        for name, (analytic, trace) in engines.items():
            assert trace[Metric.L1I_MPKI] == pytest.approx(
                analytic[Metric.L1I_MPKI], **TOL["l1i_mpki"]
            ), name

    def test_taken_pki_close(self, engines):
        # The window draws a finite hot-site sample, so the realized
        # taken share wobbles around the profile's target.
        for name, (analytic, trace) in engines.items():
            assert trace[Metric.BRANCH_TAKEN_PKI] == pytest.approx(
                analytic[Metric.BRANCH_TAKEN_PKI], **TOL["branch_taken_pki"]
            ), name

    def test_l1d_ordering_preserved(self, engines):
        names = list(engines)
        analytic_order = sorted(
            names, key=lambda n: engines[n][0][Metric.L1D_MPKI]
        )
        trace_order = sorted(names, key=lambda n: engines[n][1][Metric.L1D_MPKI])
        assert analytic_order == trace_order

    def test_branch_ordering_preserved(self, engines):
        names = list(engines)
        analytic_order = sorted(
            names, key=lambda n: engines[n][0][Metric.BRANCH_MPKI]
        )
        trace_order = sorted(names, key=lambda n: engines[n][1][Metric.BRANCH_MPKI])
        assert analytic_order == trace_order

    def test_dtlb_agreement_for_tlb_intensive_workloads(self, engines):
        # For low-pressure workloads the trace synthesizer packs cold
        # (streaming) lines densely into pages, which the analytic page
        # model does not capture; agreement is asserted only where TLB
        # pressure is the defining behaviour (mcf, cactuBSSN).
        factor = TOL["l1_dtlb_mpmi"]["factor"]
        for name, (analytic, trace) in engines.items():
            a, t = analytic[Metric.L1_DTLB_MPMI], trace[Metric.L1_DTLB_MPMI]
            if a < 20_000:
                continue
            assert 1 / factor <= t / a <= factor, name

    def test_branch_mpki_within_factor_five(self, engines):
        # The synthetic streams realize less learnable structure than
        # the analytic pattern model assumes, so the exact predictors
        # mispredict ~2x more; ordering (tested above) is what the
        # downstream analyses rely on.
        factor = TOL["branch_mpki"]["factor"]
        for name, (analytic, trace) in engines.items():
            a, t = analytic[Metric.BRANCH_MPKI], trace[Metric.BRANCH_MPKI]
            if a < 0.5 and t < 0.5:
                continue
            assert 1 / factor <= t / a <= factor, name

    def test_mix_metrics_identical(self, engines):
        for name, (analytic, trace) in engines.items():
            for metric in (
                Metric.PCT_LOAD,
                Metric.PCT_STORE,
                Metric.PCT_BRANCH,
                Metric.PCT_SIMD,
            ):
                assert trace[metric] == pytest.approx(analytic[metric])


class TestProfilerFacade:
    def test_engine_selection(self):
        from repro.perf.profiler import Profiler

        with pytest.raises(ConfigurationError):
            Profiler(engine="quantum")

    def test_trace_profiler_caches(self):
        from repro.perf.profiler import Profiler

        profiler = Profiler(engine="trace", trace_instructions=10_000)
        first = profiler.profile("541.leela_r", "skylake-i7-6700")
        second = profiler.profile("541.leela_r", "skylake-i7-6700")
        assert first is second

    def test_profile_many_covers_cross_product(self):
        from repro.perf.profiler import Profiler

        profiler = Profiler()
        reports = profiler.profile_many(
            ["541.leela_r", "505.mcf_r"],
            ["skylake-i7-6700", "sparc-t4"],
        )
        assert len(reports) == 4
        assert {(r.workload, r.machine) for r in reports} == {
            ("541.leela_r", "skylake-i7-6700"),
            ("541.leela_r", "sparc-t4"),
            ("505.mcf_r", "skylake-i7-6700"),
            ("505.mcf_r", "sparc-t4"),
        }

    def test_clear_cache(self):
        from repro.perf.profiler import Profiler

        profiler = Profiler()
        first = profiler.profile("541.leela_r", "skylake-i7-6700")
        profiler.clear_cache()
        second = profiler.profile("541.leela_r", "skylake-i7-6700")
        assert first is not second
        assert first.metrics == second.metrics
