"""Tests for the prefetcher models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.cache import Cache, CacheConfig
from repro.uarch.prefetch import NextLinePrefetcher, PrefetchStats, StridePrefetcher


def make_cache(lines=64, assoc=4):
    return Cache(CacheConfig(lines * 64, 64, assoc))


class TestPrefetchStats:
    def test_empty_stats(self):
        stats = PrefetchStats()
        assert stats.accuracy == 0.0
        assert stats.coverage == 0.0

    def test_ratios(self):
        stats = PrefetchStats(issued=10, useful=5, demand_misses=5)
        assert stats.accuracy == pytest.approx(0.5)
        assert stats.coverage == pytest.approx(0.5)


class TestNextLinePrefetcher:
    def test_sequential_stream_mostly_covered(self):
        prefetcher = NextLinePrefetcher(make_cache(), degree=2)
        for i in range(2000):
            prefetcher.access(i * 64)
        assert prefetcher.stats.coverage > 0.6
        assert prefetcher.stats.accuracy > 0.8

    def test_random_stream_not_covered(self):
        prefetcher = NextLinePrefetcher(make_cache(), degree=2)
        rng = np.random.default_rng(0)
        for address in rng.integers(0, 1 << 24, 2000) * 64:
            prefetcher.access(int(address))
        assert prefetcher.stats.coverage < 0.1

    def test_degree_validated(self):
        with pytest.raises(ConfigurationError):
            NextLinePrefetcher(make_cache(), degree=0)

    def test_no_prefetch_on_hits(self):
        prefetcher = NextLinePrefetcher(make_cache(), degree=1)
        prefetcher.access(0)
        issued_after_miss = prefetcher.stats.issued
        prefetcher.access(0)  # hit
        assert prefetcher.stats.issued == issued_after_miss

    def test_demand_accounting(self):
        prefetcher = NextLinePrefetcher(make_cache(), degree=1)
        prefetcher.access(0)
        prefetcher.access(0)
        assert prefetcher.stats.demand_accesses == 2
        assert prefetcher.stats.demand_misses == 1


class TestStridePrefetcher:
    def test_strided_stream_covered(self):
        prefetcher = StridePrefetcher(make_cache(), degree=2)
        # stride of 256 bytes (4 lines): next-line would not catch this
        for i in range(2000):
            prefetcher.access(i * 256)
        assert prefetcher.stats.coverage > 0.5

    def test_beats_next_line_on_strided_stream(self):
        stride_pf = StridePrefetcher(make_cache(), degree=2)
        nextline_pf = NextLinePrefetcher(make_cache(), degree=2)
        for i in range(2000):
            stride_pf.access(i * 512)
            nextline_pf.access(i * 512)
        assert stride_pf.stats.coverage > nextline_pf.stats.coverage

    def test_pointer_chase_uncovered(self):
        prefetcher = StridePrefetcher(make_cache(), degree=2)
        rng = np.random.default_rng(1)
        for address in rng.integers(0, 1 << 24, 2000) * 64:
            prefetcher.access(int(address))
        assert prefetcher.stats.coverage < 0.15

    def test_regions_validated(self):
        with pytest.raises(ConfigurationError):
            StridePrefetcher(make_cache(), regions=0)

    def test_stride_confidence_needs_two_confirmations(self):
        prefetcher = StridePrefetcher(make_cache(), degree=1)
        prefetcher.access(0)
        prefetcher.access(128)      # stride learned, not yet confident
        first_issued = prefetcher.stats.issued
        prefetcher.access(256)      # confident -> prefetch 384
        assert prefetcher.stats.issued > first_issued


class TestPatternAsymmetry:
    """The modelling decision the prefetchers validate: streaming access
    patterns are coverable, pointer chasing is not — which is why lbm's
    calibrated effective-MLP is large and mcf's is small."""

    def test_streaming_vs_pointer_chasing_coverage(self):
        streaming = NextLinePrefetcher(make_cache(lines=512, assoc=8), degree=2)
        for i in range(20_000):
            streaming.access((i % 100_000) * 64)
        chasing = NextLinePrefetcher(make_cache(lines=512, assoc=8), degree=2)
        rng = np.random.default_rng(5)
        for address in rng.integers(0, 1 << 22, 20_000) * 64:
            chasing.access(int(address))
        assert streaming.stats.coverage > chasing.stats.coverage + 0.3
