"""Tests for WorkloadSpec, input variants and the registry."""

import pytest

from repro.errors import ConfigurationError, UnknownWorkloadError
from repro.workloads.spec import (
    InputSetSpec,
    Suite,
    all_workloads,
    get_workload,
    workloads_in_suite,
)


class TestSuite:
    def test_cpu2017_flags(self):
        assert Suite.SPEC2017_RATE_INT.is_cpu2017
        assert Suite.SPEC2017_RATE_INT.is_integer
        assert Suite.SPEC2017_RATE_INT.is_rate
        assert not Suite.SPEC2017_RATE_INT.is_speed
        assert Suite.SPEC2017_SPEED_FP.is_floating_point
        assert Suite.SPEC2006_INT.is_cpu2006
        assert not Suite.SPEC2006_INT.is_cpu2017


class TestRegistry:
    def test_counts_per_suite(self):
        expected = {
            Suite.SPEC2017_SPEED_INT: 10,
            Suite.SPEC2017_RATE_INT: 10,
            Suite.SPEC2017_SPEED_FP: 10,
            Suite.SPEC2017_RATE_FP: 13,
            Suite.SPEC2006_INT: 12,
            Suite.SPEC2006_FP: 17,
            Suite.SPEC2000_EDA: 2,
            Suite.EMERGING_DATABASE: 2,
            Suite.EMERGING_GRAPH: 4,
        }
        for suite, count in expected.items():
            assert len(workloads_in_suite(suite)) == count, suite

    def test_total_workload_count(self):
        assert len(all_workloads()) == 80

    def test_cpu2017_has_43_benchmarks(self):
        cpu2017 = workloads_in_suite(
            Suite.SPEC2017_SPEED_INT,
            Suite.SPEC2017_RATE_INT,
            Suite.SPEC2017_SPEED_FP,
            Suite.SPEC2017_RATE_FP,
        )
        assert len(cpu2017) == 43

    def test_unknown_workload_raises(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("999.nonexistent")

    def test_lookup_round_trip(self):
        for spec in all_workloads():
            assert get_workload(spec.name) is spec

    def test_sorted_output(self):
        names = [s.name for s in all_workloads()]
        assert names == sorted(names)


class TestWorkloadSpec:
    def test_label_strips_numeric_id(self):
        assert get_workload("505.mcf_r").label == "mcf_r"
        assert get_workload("cas-WA").label == "cas-WA"

    def test_page_profiles_compress_distances(self):
        spec = get_workload("505.mcf_r")
        line_median = spec.data_reuse.components[0].median
        page_median = spec.data_page_reuse.components[0].median
        assert page_median == pytest.approx(line_median / spec.data_page_factor)

    def test_rate_partner_symmetry(self):
        rate = get_workload("505.mcf_r")
        speed = get_workload("605.mcf_s")
        assert rate.rate_partner == speed.name
        assert speed.rate_partner == rate.name

    def test_base_name_strips_input_suffix(self):
        variant = get_workload("502.gcc_r").input_variant(2)
        assert variant.base_name == "502.gcc_r"
        assert variant.name == "502.gcc_r#2"


class TestInputVariants:
    def test_single_input_returns_self(self):
        spec = get_workload("505.mcf_r")
        assert spec.input_variants() == [spec]
        assert not spec.has_multiple_inputs

    def test_gcc_has_five_inputs(self):
        spec = get_workload("502.gcc_r")
        assert len(spec.input_variants()) == 5
        assert spec.has_multiple_inputs

    def test_unknown_input_index_raises(self):
        with pytest.raises(ConfigurationError):
            get_workload("502.gcc_r").input_variant(9)

    def test_variant_scaling_changes_locality(self):
        spec = get_workload("502.gcc_r")
        small = spec.input_variant(5)   # data_scale < 1
        large = spec.input_variant(3)   # data_scale > 1
        assert small.data_reuse.miss_ratio(512) < large.data_reuse.miss_ratio(512)

    def test_variant_branch_shift_clamped(self):
        variant = get_workload("502.gcc_r").input_variant(4)
        for cls in variant.branches.classes:
            assert 0.5 <= cls.bias <= 1.0

    def test_variant_mix_stays_normalized(self):
        variant = get_workload("502.gcc_r").input_variant(3)
        mix = variant.mix
        total = mix.load + mix.store + mix.branch + mix.int_alu + mix.fp + mix.other
        assert total == pytest.approx(1.0)

    def test_variants_have_no_nested_inputs(self):
        variant = get_workload("502.gcc_r").input_variant(1)
        assert variant.input_sets == ()

    def test_duplicate_input_indices_rejected(self):
        from dataclasses import replace

        spec = get_workload("502.gcc_r")
        with pytest.raises(ConfigurationError):
            replace(spec, input_sets=(InputSetSpec(1), InputSetSpec(1)))


class TestInputSetSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InputSetSpec(0)
        with pytest.raises(ConfigurationError):
            InputSetSpec(1, weight=0.0)
        with pytest.raises(ConfigurationError):
            InputSetSpec(1, data_scale=-1.0)
