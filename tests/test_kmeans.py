"""Tests for the from-scratch k-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.stats.kmeans import kmeans


def blobs(seed=0, spread=0.3):
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0], [10, 0], [0, 10]])
    return np.vstack([c + spread * rng.normal(size=(6, 2)) for c in centers])


class TestKMeans:
    def test_recovers_blobs(self):
        points = blobs()
        result = kmeans(points, 3)
        # each blob pure
        for start in (0, 6, 12):
            assert len(set(result.assignment[start : start + 6])) == 1
        assert len(set(result.assignment)) == 3

    def test_deterministic_per_seed(self):
        points = blobs(seed=3)
        first = kmeans(points, 3, seed=11)
        second = kmeans(points, 3, seed=11)
        assert np.array_equal(first.assignment, second.assignment)

    def test_k_bounds(self):
        points = blobs()
        with pytest.raises(AnalysisError):
            kmeans(points, 0)
        with pytest.raises(AnalysisError):
            kmeans(points, 99)

    def test_k_equals_n(self):
        points = blobs()
        result = kmeans(points, points.shape[0])
        assert len(set(result.assignment)) == points.shape[0]
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one(self):
        points = blobs()
        result = kmeans(points, 1)
        assert (result.assignment == 0).all()
        assert np.allclose(result.centroids[0], points.mean(axis=0))

    def test_inertia_decreases_with_k(self):
        points = blobs(spread=1.0)
        inertias = [kmeans(points, k).inertia for k in (1, 2, 3, 6)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_clusters_named(self):
        points = blobs()
        labels = [f"w{i}" for i in range(points.shape[0])]
        groups = kmeans(points, 3).clusters(labels)
        assert sum(len(g) for g in groups) == 18

    def test_representatives_near_centroids(self):
        points = blobs()
        labels = [f"w{i}" for i in range(points.shape[0])]
        result = kmeans(points, 3)
        reps = result.representatives(points, labels)
        assert len(reps) == 3
        for rep in reps:
            assert rep in labels

    def test_label_length_checked(self):
        points = blobs()
        result = kmeans(points, 3)
        with pytest.raises(AnalysisError):
            result.clusters(["too", "few"])
        with pytest.raises(AnalysisError):
            result.representatives(points, ["too", "few"])

    def test_requires_2d(self):
        with pytest.raises(AnalysisError):
            kmeans(np.zeros(5), 2)

    @given(st.integers(0, 5000), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_partition_invariants(self, seed, k):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(12, 3))
        result = kmeans(points, k, seed=seed)
        assert result.assignment.shape == (12,)
        assert set(result.assignment) <= set(range(k))
        assert len(set(result.assignment)) == k
        assert result.inertia >= 0.0
