"""Tests for the from-scratch PCA (validated against first principles)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import AnalysisError
from repro.stats.pca import fit_pca


def random_matrix(n=30, m=8, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, 3))
    mixing = rng.normal(size=(3, m))
    return base @ mixing + 0.05 * rng.normal(size=(n, m))


class TestFitPca:
    def test_eigenvalues_descending(self):
        pca = fit_pca(random_matrix())
        diffs = np.diff(pca.eigenvalues)
        assert (diffs <= 1e-9).all()

    def test_variance_ratio_sums_to_one(self):
        pca = fit_pca(random_matrix())
        assert pca.explained_variance_ratio.sum() == pytest.approx(1.0)

    def test_three_latent_factors_detected(self):
        # Data generated from 3 factors: ~3 components explain ~all variance.
        pca = fit_pca(random_matrix())
        assert pca.cumulative_variance(3) > 0.97

    def test_kaiser_keeps_strong_components_only(self):
        pca = fit_pca(random_matrix())
        kept = pca.eigenvalues[: pca.kaiser_components]
        assert (kept >= 1.0).all() or pca.kaiser_components == 1

    def test_scores_are_uncorrelated(self):
        pca = fit_pca(random_matrix(n=200, m=10, seed=3))
        scores = pca.scores[:, :4]
        covariance = np.cov(scores.T)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 0.05 * np.abs(np.diag(covariance)).max()

    def test_scores_shape_bounded_by_samples(self):
        pca = fit_pca(random_matrix(n=5, m=40))
        assert pca.scores.shape == (5, 4)  # at most n-1 components

    def test_loadings_are_unit_vectors(self):
        pca = fit_pca(random_matrix())
        norms = np.linalg.norm(pca.loadings, axis=1)
        assert norms == pytest.approx(np.ones_like(norms), abs=1e-8)

    def test_deterministic_sign_convention(self):
        first = fit_pca(random_matrix(seed=5))
        second = fit_pca(random_matrix(seed=5))
        assert np.allclose(first.loadings, second.loadings)

    def test_projection_reconstructs_standardized_data(self):
        matrix = random_matrix(n=50, m=6, seed=2)
        pca = fit_pca(matrix)
        from repro.stats.preprocess import standardize

        reconstructed = pca.scores @ pca.loadings
        assert np.allclose(reconstructed, standardize(matrix), atol=1e-6)

    def test_dominant_features_requires_labels(self):
        pca = fit_pca(random_matrix())
        with pytest.raises(AnalysisError):
            pca.dominant_features(1)

    def test_dominant_features_finds_planted_feature(self):
        rng = np.random.default_rng(0)
        matrix = 0.01 * rng.normal(size=(40, 5))
        matrix[:, 2] += rng.normal(size=40) * 10  # dominant variance source
        labels = tuple("abcde")
        pca = fit_pca(matrix, feature_labels=labels)
        assert pca.dominant_features(1, top=1)[0] == "c"

    def test_cumulative_variance_bounds(self):
        pca = fit_pca(random_matrix())
        with pytest.raises(AnalysisError):
            pca.cumulative_variance(0)
        with pytest.raises(AnalysisError):
            pca.cumulative_variance(999)

    def test_retained_scores_bounds(self):
        pca = fit_pca(random_matrix())
        with pytest.raises(AnalysisError):
            pca.retained_scores(0)

    def test_needs_two_samples(self):
        with pytest.raises(AnalysisError):
            fit_pca(np.ones((1, 4)))

    def test_needs_2d(self):
        with pytest.raises(AnalysisError):
            fit_pca(np.ones(4))

    def test_label_length_checked(self):
        with pytest.raises(AnalysisError):
            fit_pca(random_matrix(m=8), feature_labels=("a",))

    def test_constant_columns_tolerated(self):
        matrix = random_matrix()
        matrix[:, 0] = 7.0
        pca = fit_pca(matrix)
        assert np.isfinite(pca.scores).all()

    @given(
        arrays(
            np.float64,
            (12, 5),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_eigenvalues_nonnegative_for_any_input(self, matrix):
        matrix = matrix + np.random.default_rng(0).normal(size=matrix.shape) * 1e-6
        pca = fit_pca(matrix)
        assert (pca.eigenvalues >= -1e-9).all()
        assert 1 <= pca.kaiser_components <= pca.n_components

    def test_matches_numpy_svd_variances(self):
        """Cross-check eigenvalues against an SVD-based PCA."""
        matrix = random_matrix(n=60, m=7, seed=9)
        from repro.stats.preprocess import standardize

        data = standardize(matrix)
        singular = np.linalg.svd(data, compute_uv=False)
        svd_eigenvalues = (singular ** 2) / data.shape[0]
        pca = fit_pca(matrix)
        assert np.allclose(
            pca.eigenvalues, svd_eigenvalues[: pca.n_components], atol=1e-8
        )
