"""Determinism regression tests for the parallel sweep and disk cache.

The contract (DESIGN.md, "Parallel execution & caching"): a feature
matrix built with any worker count, backend or cache temperature is
**bit-identical** — same floats, same row/column order, same digest —
to the pre-PR serial build.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.perf.dataset import FeatureMatrix, build_feature_matrix
from repro.perf.counters import SIMILARITY_METRICS
from repro.perf.profiler import Profiler
from repro.uarch.machine import PAPER_MACHINE_NAMES, get_machine
from repro.workloads.spec import Suite, workloads_in_suite

WORKLOADS = [s.name for s in workloads_in_suite(Suite.SPEC2017_SPEED_INT)]
TRACE_KWARGS = dict(engine="trace", trace_instructions=2_000)


def pre_pr_serial_matrix(profiler) -> FeatureMatrix:
    """The seed's build_feature_matrix loop, reimplemented verbatim."""
    specs = WORKLOADS
    machines = [get_machine(m) for m in PAPER_MACHINE_NAMES]
    features = tuple(
        f"{metric.value}@{machine.name}"
        for machine in machines
        for metric in SIMILARITY_METRICS
    )
    rows = np.empty((len(specs), len(features)), dtype=float)
    for i, name in enumerate(specs):
        row = []
        for machine in machines:
            report = profiler.profile(name, machine)
            row.extend(
                report.metrics.get(metric, 0.0)
                for metric in SIMILARITY_METRICS
            )
        rows[i] = row
    return FeatureMatrix(
        values=rows, workloads=tuple(specs), features=features
    )


def assert_bit_identical(a: FeatureMatrix, b: FeatureMatrix) -> None:
    assert a.workloads == b.workloads  # row order
    assert a.features == b.features    # column order
    assert a.values.tobytes() == b.values.tobytes()  # exact float bits
    assert np.array_equal(a.values, b.values)
    assert a.digest() == b.digest()


class TestAnalyticEngine:
    @pytest.fixture(scope="class")
    def serial(self):
        return build_feature_matrix(WORKLOADS, profiler=Profiler(), jobs=1)

    def test_serial_matches_the_pre_pr_path(self, serial):
        assert_bit_identical(serial, pre_pr_serial_matrix(Profiler()))

    @pytest.mark.parametrize("jobs", (2, 4))
    def test_thread_jobs_are_bit_identical(self, serial, jobs):
        parallel = build_feature_matrix(
            WORKLOADS, profiler=Profiler(), jobs=jobs
        )
        assert_bit_identical(serial, parallel)

    def test_process_backend_is_bit_identical(self, serial):
        parallel = build_feature_matrix(
            WORKLOADS, profiler=Profiler(), jobs=2, backend="process"
        )
        assert_bit_identical(serial, parallel)


class TestTraceEngine:
    @pytest.fixture(scope="class")
    def serial(self):
        return build_feature_matrix(
            WORKLOADS[:4],
            machines=("skylake-i7-6700", "sparc-t4"),
            profiler=Profiler(**TRACE_KWARGS),
            jobs=1,
        )

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_parallel_trace_sweep_is_bit_identical(self, serial, backend):
        parallel = build_feature_matrix(
            WORKLOADS[:4],
            machines=("skylake-i7-6700", "sparc-t4"),
            profiler=Profiler(**TRACE_KWARGS),
            jobs=4,
            backend=backend,
        )
        assert_bit_identical(serial, parallel)


class TestDiskCacheDeterminism:
    def test_warm_matrix_is_bit_identical_to_cold(self, tmp_path):
        cold = build_feature_matrix(
            WORKLOADS, profiler=Profiler(cache_dir=tmp_path), jobs=2
        )
        warm_profiler = Profiler(cache_dir=tmp_path)
        warm = build_feature_matrix(WORKLOADS, profiler=warm_profiler, jobs=2)
        assert_bit_identical(cold, warm)
        info = warm_profiler.cache_info()
        assert info.misses == 0
        assert info.disk_hits == len(WORKLOADS) * len(PAPER_MACHINE_NAMES)

    def test_warm_trace_sweep_is_at_least_5x_faster_than_cold(self, tmp_path):
        # The acceptance bar for the disk cache: a warm re-run of a
        # trace-engine sweep loads pickles instead of simulating, which
        # is orders of magnitude faster; >= 5x leaves a wide margin.
        workloads = WORKLOADS[:6]
        machines = ("skylake-i7-6700", "sparc-t4")

        def sweep():
            profiler = Profiler(
                engine="trace", trace_instructions=20_000, cache_dir=tmp_path
            )
            start = time.perf_counter()
            matrix = build_feature_matrix(
                workloads, machines=machines, profiler=profiler, jobs=1
            )
            return matrix, time.perf_counter() - start, profiler

        cold_matrix, cold_time, _ = sweep()
        warm_matrix, warm_time, warm_profiler = sweep()
        assert_bit_identical(cold_matrix, warm_matrix)
        assert warm_profiler.cache_info().misses == 0
        assert cold_time >= 5.0 * warm_time, (
            f"warm {warm_time:.3f}s vs cold {cold_time:.3f}s"
        )


class TestCliDataset:
    """`repro dataset --jobs 4` == `--jobs 1`, down to the CSV bytes."""

    def _run(self, tmp_path, jobs, capsys):
        from repro.cli import main

        out = tmp_path / f"matrix-{jobs}.csv"
        assert main([
            "dataset", "--suite", "speed-int", "--jobs", str(jobs),
            "--no-disk-cache", "--out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        digest = next(
            line.split(": ", 1)[1]
            for line in stdout.splitlines()
            if line.startswith("digest: ")
        )
        return digest, out.read_bytes()

    def test_jobs4_byte_identical_to_jobs1(self, tmp_path, capsys):
        digest_1, csv_1 = self._run(tmp_path, 1, capsys)
        digest_4, csv_4 = self._run(tmp_path, 4, capsys)
        assert digest_1 == digest_4
        assert csv_1 == csv_4

    def test_dataset_reports_disk_cache_hits(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["dataset", "--suite", "speed-int",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--jobs", "4"]) == 0
        out = capsys.readouterr().out
        assert "70 disk hits, 0 computed" in out
