"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ReproError,
    UnknownMachineError,
    UnknownWorkloadError,
)


class TestHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error_type in (
            UnknownWorkloadError,
            UnknownMachineError,
            ConfigurationError,
            AnalysisError,
        ):
            assert issubclass(error_type, ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(UnknownWorkloadError, KeyError)
        assert issubclass(UnknownMachineError, KeyError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_analysis_error_is_runtime_error(self):
        assert issubclass(AnalysisError, RuntimeError)


class TestMessages:
    def test_unknown_workload_message(self):
        error = UnknownWorkloadError("999.ghost")
        assert "999.ghost" in str(error)
        assert error.name == "999.ghost"

    def test_unknown_machine_message(self):
        error = UnknownMachineError("cray-1")
        assert "cray-1" in str(error)

    def test_catchable_as_repro_error(self):
        from repro.workloads.spec import get_workload

        with pytest.raises(ReproError):
            get_workload("does-not-exist")
