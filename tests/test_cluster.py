"""Tests for agglomerative clustering, cross-validated against SciPy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.cluster import hierarchy as scipy_hierarchy
from scipy.spatial.distance import pdist

from repro.errors import AnalysisError
from repro.stats.cluster import (
    ClusterTree,
    Linkage,
    cut_at_distance,
    cut_into_clusters,
    linkage_matrix,
    representatives,
)
from repro.stats.distance import euclidean_distance_matrix


def blobs(seed=0, sizes=(5, 5, 5), spread=0.3):
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0], [10, 0], [0, 10]])
    points = []
    for center, size in zip(centers, sizes):
        points.append(center + spread * rng.normal(size=(size, 2)))
    return np.vstack(points)


class TestLinkageMatrix:
    @pytest.mark.parametrize("method", list(Linkage))
    def test_shape_and_sizes(self, method):
        points = blobs()
        merges = linkage_matrix(points, method=method)
        n = points.shape[0]
        assert merges.shape == (n - 1, 4)
        assert merges[-1, 3] == n  # final merge contains everything

    @pytest.mark.parametrize(
        "method,scipy_name",
        [
            (Linkage.SINGLE, "single"),
            (Linkage.COMPLETE, "complete"),
            (Linkage.AVERAGE, "average"),
            (Linkage.WARD, "ward"),
        ],
    )
    def test_merge_heights_match_scipy(self, method, scipy_name):
        """Our Lance-Williams implementation must agree with SciPy."""
        points = blobs(seed=3, sizes=(4, 6, 5))
        ours = linkage_matrix(points, method=method)
        theirs = scipy_hierarchy.linkage(points, method=scipy_name)
        assert np.allclose(np.sort(ours[:, 2]), np.sort(theirs[:, 2]), atol=1e-8)

    @pytest.mark.parametrize("method", list(Linkage))
    def test_flat_clusters_match_scipy(self, method):
        points = blobs(seed=7)
        ours = cut_into_clusters(linkage_matrix(points, method=method), 3)
        theirs = scipy_hierarchy.fcluster(
            scipy_hierarchy.linkage(points, method=method.value), 3,
            criterion="maxclust",
        )
        # same partition up to label renaming
        mapping = {}
        for mine, scipys in zip(ours, theirs):
            mapping.setdefault(mine, scipys)
            assert mapping[mine] == scipys

    def test_precomputed_distances(self):
        points = blobs()
        square = euclidean_distance_matrix(points)
        from_points = linkage_matrix(points, method=Linkage.AVERAGE)
        from_dist = linkage_matrix(square, method=Linkage.AVERAGE, precomputed=True)
        assert np.allclose(from_points[:, 2], from_dist[:, 2])

    def test_single_linkage_heights_nondecreasing(self):
        merges = linkage_matrix(blobs(), method=Linkage.SINGLE)
        assert (np.diff(merges[:, 2]) >= -1e-9).all()

    def test_requires_two_points(self):
        with pytest.raises(AnalysisError):
            linkage_matrix(np.zeros((1, 2)))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_three_blobs_always_recovered(self, seed):
        points = blobs(seed=seed)
        assignment = cut_into_clusters(
            linkage_matrix(points, method=Linkage.AVERAGE), 3
        )
        # each blob of 5 points must be one pure cluster
        for start in (0, 5, 10):
            assert len(set(assignment[start : start + 5])) == 1
        assert len(set(assignment)) == 3


class TestCuts:
    def test_cut_at_zero_gives_singletons(self):
        merges = linkage_matrix(blobs())
        assignment = cut_at_distance(merges, -1.0)
        assert len(set(assignment)) == len(assignment)

    def test_cut_at_infinity_gives_one_cluster(self):
        merges = linkage_matrix(blobs())
        assignment = cut_at_distance(merges, np.inf)
        assert len(set(assignment)) == 1

    def test_cut_into_bounds(self):
        merges = linkage_matrix(blobs())
        with pytest.raises(AnalysisError):
            cut_into_clusters(merges, 0)
        with pytest.raises(AnalysisError):
            cut_into_clusters(merges, 999)

    def test_cut_into_n_gives_singletons(self):
        points = blobs()
        merges = linkage_matrix(points)
        assignment = cut_into_clusters(merges, points.shape[0])
        assert len(set(assignment)) == points.shape[0]

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 10])
    def test_cut_into_exact_count(self, k):
        merges = linkage_matrix(blobs(seed=11))
        assignment = cut_into_clusters(merges, k)
        assert len(set(assignment)) == k


class TestRepresentatives:
    def test_medoid_selected(self):
        points = np.array([[0.0, 0], [1, 0], [0.5, 0], [10, 10]])
        distances = euclidean_distance_matrix(points)
        assignment = np.array([0, 0, 0, 1])
        labels = ["a", "b", "center", "lonely"]
        chosen = representatives(assignment, distances, labels)
        assert chosen == ["center", "lonely"]

    def test_singleton_cluster_is_its_own_representative(self):
        points = np.array([[0.0, 0], [9, 9]])
        chosen = representatives(
            np.array([0, 1]), euclidean_distance_matrix(points), ["x", "y"]
        )
        assert chosen == ["x", "y"]

    def test_tie_breaks_lexicographically(self):
        points = np.array([[0.0, 0], [1, 0]])
        chosen = representatives(
            np.array([0, 0]), euclidean_distance_matrix(points), ["zeta", "alpha"]
        )
        assert chosen == ["alpha"]

    def test_shape_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            representatives(np.array([0]), np.zeros((2, 2)), ["a", "b"])


class TestClusterTree:
    def build(self, seed=0):
        points = blobs(seed=seed)
        labels = [f"w{i}" for i in range(points.shape[0])]
        return ClusterTree.from_points(points, labels), points

    def test_label_count_checked(self):
        with pytest.raises(AnalysisError):
            ClusterTree(merges=np.zeros((3, 4)), labels=("a", "b"))

    def test_clusters_at_threshold(self):
        tree, _ = self.build()
        clusters = tree.clusters_at(2.0)
        assert len(clusters) == 3
        assert sum(len(c) for c in clusters) == 15

    def test_clusters_into(self):
        tree, _ = self.build()
        assert len(tree.clusters_into(4)) == 4

    def test_leaf_order_is_permutation(self):
        tree, _ = self.build()
        assert sorted(tree.leaf_order()) == sorted(tree.labels)

    def test_leaf_order_keeps_blobs_contiguous(self):
        tree, _ = self.build()
        order = tree.leaf_order()
        blocks = [{f"w{i}" for i in range(s, s + 5)} for s in (0, 5, 10)]
        positions = [sorted(order.index(w) for w in block) for block in blocks]
        for pos in positions:
            assert pos == list(range(pos[0], pos[0] + 5))

    def test_cophenetic_distance_matches_scipy(self):
        points = blobs(seed=4)
        labels = [f"w{i}" for i in range(points.shape[0])]
        tree = ClusterTree.from_points(points, labels, Linkage.AVERAGE)
        scipy_merges = scipy_hierarchy.linkage(points, method="average")
        cophenetic = scipy_hierarchy.cophenet(scipy_merges)
        from scipy.spatial.distance import squareform

        square = squareform(cophenetic)
        for i in (0, 3):
            for j in (7, 12):
                assert tree.cophenetic_distance(labels[i], labels[j]) == pytest.approx(
                    square[i, j], abs=1e-8
                )

    def test_cophenetic_distance_self_is_zero(self):
        tree, _ = self.build()
        assert tree.cophenetic_distance("w0", "w0") == 0.0

    def test_cophenetic_unknown_leaf(self):
        tree, _ = self.build()
        with pytest.raises(AnalysisError):
            tree.cophenetic_distance("w0", "nope")

    def test_most_distinct_leaf_is_outlier(self):
        rng = np.random.default_rng(0)
        points = np.vstack([rng.normal(size=(9, 2)), [[40.0, 40.0]]])
        labels = [f"w{i}" for i in range(9)] + ["outlier"]
        tree = ClusterTree.from_points(points, labels)
        assert tree.most_distinct_leaf() == "outlier"

    def test_heights_property(self):
        tree, _ = self.build()
        assert tree.heights.shape == (tree.n_leaves - 1,)
