"""Unit tests for TLB simulation and page-walk costing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.uarch.tlb import PageWalker, Tlb, TlbConfig, TlbHierarchy

PAGE = 4096


class TestTlbConfig:
    def test_geometry(self):
        config = TlbConfig(entries=64, associativity=4)
        assert config.num_sets == 16

    @pytest.mark.parametrize(
        "entries,assoc,page",
        [(0, 4, 4096), (64, 0, 4096), (64, 5, 4096), (64, 4, 1000), (96, 4, 4096)],
    )
    def test_invalid_rejected(self, entries, assoc, page):
        with pytest.raises(ConfigurationError):
            TlbConfig(entries=entries, associativity=assoc, page_bytes=page)

    def test_fully_associative(self):
        config = TlbConfig(entries=48, associativity=48)
        assert config.num_sets == 1


class TestTlb:
    def test_first_translation_misses(self):
        tlb = Tlb(TlbConfig(16, 4))
        assert tlb.access(0x1000) is False
        assert tlb.access(0x1000) is True

    def test_same_page_hits(self):
        tlb = Tlb(TlbConfig(16, 4))
        tlb.access(0)
        assert tlb.access(PAGE - 1) is True

    def test_different_page_misses(self):
        tlb = Tlb(TlbConfig(16, 4))
        tlb.access(0)
        assert tlb.access(PAGE) is False

    def test_lru_within_set(self):
        tlb = Tlb(TlbConfig(2, 2))  # one set, two ways
        tlb.access(0 * PAGE)
        tlb.access(1 * PAGE)
        tlb.access(0 * PAGE)
        tlb.access(2 * PAGE)  # evicts page 1
        assert tlb.access(0 * PAGE) is True
        assert tlb.access(1 * PAGE) is False

    def test_miss_ratio(self):
        tlb = Tlb(TlbConfig(16, 4))
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_ratio == pytest.approx(0.5)

    def test_reset(self):
        tlb = Tlb(TlbConfig(16, 4))
        tlb.access(0)
        tlb.reset()
        assert tlb.accesses == 0
        assert tlb.access(0) is False

    def test_capacity_bounded_working_set_hits(self):
        tlb = Tlb(TlbConfig(32, 32))
        pages = [i * PAGE for i in range(16)]
        for address in pages:
            tlb.access(address)
        for address in pages:
            assert tlb.access(address) is True

    @given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_stats_invariants(self, addresses):
        tlb = Tlb(TlbConfig(16, 4))
        for address in addresses:
            tlb.access(address)
        assert tlb.accesses == len(addresses)
        assert 0 <= tlb.misses <= tlb.accesses


class TestPageWalker:
    def test_average_between_cached_and_full(self):
        walker = PageWalker(walk_cycles=40, cached_fraction=0.5, cached_cycles=10)
        assert walker.average_cycles() == pytest.approx(25.0)

    def test_no_cache_means_full_cost(self):
        walker = PageWalker(walk_cycles=40, cached_fraction=0.0)
        assert walker.average_cycles() == pytest.approx(40.0)


class TestTlbHierarchy:
    def build(self, unified=True, l2=256):
        return TlbHierarchy(
            itlb=TlbConfig(16, 4),
            dtlb=TlbConfig(16, 4),
            l2=TlbConfig(l2, 4) if l2 else None,
            unified_l2=unified,
        )

    def test_l1_hit_no_walk(self):
        hierarchy = self.build()
        hierarchy.translate_data(0)
        hierarchy.translate_data(0)
        assert hierarchy.page_walks == 1  # only the first cold access

    def test_unified_l2_shared_between_streams(self):
        hierarchy = self.build(unified=True)
        assert hierarchy.l2_itlb is hierarchy.l2_dtlb

    def test_split_l2_separate(self):
        hierarchy = self.build(unified=False)
        assert hierarchy.l2_itlb is not hierarchy.l2_dtlb

    def test_l2_covers_l1_capacity_misses(self):
        hierarchy = self.build()
        pages = [i * PAGE for i in range(64)]  # > L1 (16), < L2 (256)
        for address in pages:
            hierarchy.translate_data(address)
        walks_after_warmup = hierarchy.page_walks
        for address in pages:
            hierarchy.translate_data(address)
        # second pass: L1 misses but L2 hits -> no further walks
        assert hierarchy.page_walks == walks_after_warmup

    def test_no_l2_means_every_l1_miss_walks(self):
        hierarchy = self.build(l2=None)
        hierarchy.translate_data(0)
        hierarchy.translate_data(PAGE)
        assert hierarchy.page_walks == 2

    def test_last_level_misses_without_l2(self):
        hierarchy = self.build(l2=None)
        hierarchy.translate_data(0)
        hierarchy.translate_inst(PAGE)
        assert hierarchy.last_level_misses() == 2

    def test_instruction_stream_uses_itlb(self):
        hierarchy = self.build()
        hierarchy.translate_inst(0)
        assert hierarchy.itlb.accesses == 1
        assert hierarchy.dtlb.accesses == 0

    def test_reset(self):
        hierarchy = self.build()
        hierarchy.translate_data(0)
        hierarchy.translate_inst(PAGE)
        hierarchy.reset()
        assert hierarchy.page_walks == 0
        assert hierarchy.dtlb.accesses == 0
        assert hierarchy.itlb.accesses == 0

    def test_random_pages_walk_often(self):
        hierarchy = self.build(l2=64)
        rng = np.random.default_rng(0)
        for page in rng.integers(0, 1 << 20, 2000):
            hierarchy.translate_data(int(page) * PAGE)
        # far beyond any TLB capacity: nearly every access walks
        assert hierarchy.page_walks > 1500
