"""Bit-identity parity suite for the vectorized simulation kernels.

The contract (DESIGN.md, "Batch simulation kernels"): the vector
kernels in :mod:`repro.uarch.kernels` are **bit-identical** to the
scalar per-access simulators — same per-access outcomes, same final
structure state (tags, dirty bits, stamps, clock), same statistics,
same warm-up cut semantics and the same RANDOM-policy RNG draws.

The property-based classes drive both implementations over seeded
randomized geometries and streams from the shared :mod:`tests.parity`
harness (stdlib ``random`` via :func:`tests.parity.rng_for`, hash-based
seeds, so failures replay deterministically across processes) and
compare *everything*, not just the returned arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.parity import (
    assert_cache_states_equal,
    assert_predictor_states_equal,
    assert_tlb_states_equal,
    rng_for,
    sample_cache_config,
    sample_predictor_spec,
    sample_tlb_config,
)

from repro.errors import ConfigurationError
from repro.perf.diskcache import cache_key
from repro.perf.profiler import Profiler
from repro.perf.trace_engine import profile_trace
from repro.uarch.branch import PredictorSpec, build_predictor
from repro.uarch.cache import CacheConfig, ReplacementPolicy, build_hierarchy
from repro.uarch.kernels import (
    TRACE_KERNELS,
    default_trace_kernel,
    resolve_trace_kernel,
    validate_trace_kernel,
)
from repro.uarch.machine import PAPER_MACHINE_NAMES, get_machine
from repro.uarch.tlb import TlbConfig, TlbHierarchy
from repro.workloads.spec import get_workload


class TestCacheParity:
    """access_many vs. the scalar access loop, over random geometries."""

    @pytest.mark.parametrize("policy", list(ReplacementPolicy))
    def test_randomized_chains(self, policy):
        rnd = rng_for("cache-parity", policy.value)
        for trial in range(16):
            levels = rnd.choice([1, 2, 3])
            configs = [
                sample_cache_config(rnd, policy=policy)
                for _ in range(levels)
            ]
            chain_v = build_hierarchy(configs)
            chain_s = build_hierarchy(configs)
            for cv, cs in zip(chain_v, chain_s):
                seed = rnd.randrange(1 << 30)
                cv._rng = np.random.default_rng(seed)
                cs._rng = np.random.default_rng(seed)
            n = rnd.choice([0, 1, 7, 250, 600])
            addrs = np.array(
                [rnd.randrange(0, 1 << 14) for _ in range(n)], dtype=np.int64
            )
            writes = (
                np.array([rnd.random() < 0.3 for _ in range(n)], dtype=bool)
                if rnd.random() < 0.7
                else None
            )
            cut = rnd.choice([None, 0, n // 3])
            if rnd.random() < 0.5 and n:
                # Pre-warm both chains identically so initial residency
                # (dirty lines, stamps) is exercised, not just cold sets.
                warm = np.array(
                    [rnd.randrange(0, 1 << 14) for _ in range(60)],
                    dtype=np.int64,
                )
                for a in warm.tolist():
                    chain_s[0].access(a)
                chain_v[0].access_many(warm)
            for i, a in enumerate(addrs.tolist()):
                if cut is not None and i == cut:
                    for level in chain_s:
                        level.stats.reset()
                chain_s[0].access(
                    a,
                    is_write=bool(writes[i]) if writes is not None else False,
                )
            hits = chain_v[0].access_many(
                addrs, is_write=writes, reset_stats_at=cut
            )
            assert hits.shape == (n,)
            for cv, cs in zip(chain_v, chain_s):
                assert_cache_states_equal(cv, cs)
                # The RANDOM policy must also leave the generator at the
                # same stream position (same number of draws consumed).
                draw_v = int(cv._rng.integers(0, 1 << 20))
                draw_s = int(cs._rng.integers(0, 1 << 20))
                assert draw_v == draw_s

    def test_hit_array_matches_scalar_outcomes(self):
        config = CacheConfig(size_bytes=1024, line_bytes=64, associativity=2)
        chain_v = build_hierarchy([config])
        chain_s = build_hierarchy([config])
        rnd = rng_for("cache-hit-array")
        addrs = np.array(
            [rnd.randrange(0, 1 << 12) for _ in range(300)], dtype=np.int64
        )
        expected = np.array(
            [chain_s[0].access(a) for a in addrs.tolist()], dtype=bool
        )
        got = chain_v[0].access_many(addrs)
        assert np.array_equal(got, expected)

    def test_is_write_length_mismatch_raises(self):
        config = CacheConfig(size_bytes=1024, line_bytes=64, associativity=2)
        (cache,) = build_hierarchy([config])
        with pytest.raises(ConfigurationError):
            cache.access_many(
                np.zeros(4, dtype=np.int64), is_write=np.zeros(3, dtype=bool)
            )


class TestTlbParity:
    """translate_*_many vs. the scalar translate loop."""

    @pytest.mark.parametrize("shape", ["no_l2", "unified", "split"])
    def test_randomized_hierarchies(self, shape):
        rnd = rng_for("tlb-parity", shape)
        for trial in range(12):
            l1 = sample_tlb_config(rnd)
            l2 = (
                None
                if shape == "no_l2"
                else TlbConfig(entries=128, associativity=8)
            )
            unified = shape == "unified"
            hv = TlbHierarchy(itlb=l1, dtlb=l1, l2=l2, unified_l2=unified)
            hs = TlbHierarchy(itlb=l1, dtlb=l1, l2=l2, unified_l2=unified)
            n = rnd.choice([0, 5, 400])
            daddrs = np.array(
                [rnd.randrange(0, 1 << 30) for _ in range(n)], dtype=np.int64
            )
            iaddrs = np.array(
                [rnd.randrange(0, 1 << 30) for _ in range(n)], dtype=np.int64
            )
            d_hits = [hs.translate_data(a) for a in daddrs.tolist()]
            i_hits = [hs.translate_inst(a) for a in iaddrs.tolist()]
            batch_d = hv.translate_data_many(daddrs)
            batch_i = hv.translate_inst_many(iaddrs)
            assert np.array_equal(~batch_d.l1_miss, np.array(d_hits, bool))
            assert np.array_equal(~batch_i.l1_miss, np.array(i_hits, bool))
            for tv, ts in (
                (hv.itlb, hs.itlb),
                (hv.dtlb, hs.dtlb),
                (hv.l2_itlb, hs.l2_itlb),
                (hv.l2_dtlb, hs.l2_dtlb),
            ):
                if tv is None:
                    assert ts is None
                    continue
                assert_tlb_states_equal(tv, ts)
            assert hv.page_walks == hs.page_walks
            assert hv.last_level_misses() == hs.last_level_misses()
            # Second pass over the same stream exercises warm residency.
            for a in daddrs.tolist():
                hs.translate_data(a)
            hv.translate_data_many(daddrs)
            assert_tlb_states_equal(hv.dtlb, hs.dtlb)
            assert hv.page_walks == hs.page_walks

    def test_walks_flag_marks_last_level_misses(self):
        l1 = TlbConfig(entries=8, associativity=2)
        h = TlbHierarchy(itlb=l1, dtlb=l1, l2=None)
        addrs = np.arange(0, 64 << 12, 1 << 12, dtype=np.int64)
        batch = h.translate_data_many(addrs)
        assert int(batch.walks.sum()) == h.page_walks
        # Without an L2, every L1 miss walks.
        assert np.array_equal(batch.walks, batch.l1_miss)


class TestPredictorParity:
    """predict_many vs. the scalar predict_and_update loop."""

    @pytest.mark.parametrize(
        "kind", ["static", "bimodal", "gshare", "tournament"]
    )
    def test_randomized_streams(self, kind):
        rnd = rng_for("predictor-parity", kind)
        for trial in range(12):
            spec = PredictorSpec(
                kind=kind,
                table_entries=sample_predictor_spec(rnd).table_entries,
            )
            pv = build_predictor(spec)
            ps = build_predictor(spec)
            n = rnd.choice([0, 3, 500])
            pcs = np.array(
                [rnd.randrange(0, 1 << 16) for _ in range(n)], dtype=np.int64
            )
            taken = np.array(
                [rnd.random() < 0.6 for _ in range(n)], dtype=bool
            )
            expected = np.array(
                [
                    ps.predict_and_update(int(p), bool(t))
                    for p, t in zip(pcs, taken)
                ],
                dtype=bool,
            )
            got = pv.predict_many(pcs, taken)
            assert np.array_equal(got, expected)
            assert_predictor_states_equal(pv, ps)

    def test_base_class_fallback_matches(self):
        # A predictor without a batch override must still work through
        # the scalar fallback of BranchPredictor.predict_many.
        spec = PredictorSpec(kind="bimodal", table_entries=64)
        pv = build_predictor(spec)
        ps = build_predictor(spec)
        pcs = np.arange(120, dtype=np.int64)
        taken = (pcs % 3 == 0).astype(bool)
        from repro.uarch.branch import BranchPredictor

        got = BranchPredictor.predict_many(pv, pcs, taken)
        expected = np.array(
            [ps.predict_and_update(int(p), bool(t)) for p, t in zip(pcs, taken)],
            dtype=bool,
        )
        assert np.array_equal(got, expected)
        assert np.array_equal(pv._counters, ps._counters)


class TestEngineParity:
    """profile_trace scalar vs. vector must agree metric-for-metric."""

    @pytest.mark.parametrize("machine", PAPER_MACHINE_NAMES)
    @pytest.mark.parametrize("warmup", [0.0, 0.25])
    def test_metrics_identical_across_machines(self, machine, warmup):
        spec = get_workload("505.mcf_r")
        config = get_machine(machine)
        scalar = profile_trace(
            spec,
            config,
            instructions=3_000,
            warmup_fraction=warmup,
            kernel="scalar",
        )
        vector = profile_trace(
            spec,
            config,
            instructions=3_000,
            warmup_fraction=warmup,
            kernel="vector",
        )
        assert scalar.metrics == vector.metrics
        assert scalar.cpi_stack == vector.cpi_stack
        assert scalar.instructions == vector.instructions

    def test_sweep_digest_identical(self):
        from repro.perf.dataset import build_feature_matrix

        workloads = ["505.mcf_r", "525.x264_r"]
        machines = PAPER_MACHINE_NAMES[:2]
        digests = {}
        for kernel in TRACE_KERNELS:
            profiler = Profiler(
                engine="trace", trace_instructions=2_000, trace_kernel=kernel
            )
            matrix = build_feature_matrix(
                workloads=workloads, machines=machines, profiler=profiler
            )
            digests[kernel] = matrix.digest()
        assert digests["scalar"] == digests["vector"]


class TestKernelKnob:
    """Selection, validation and cache keying of the kernel knob."""

    def test_validate_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            validate_trace_kernel("simd")
        with pytest.raises(ConfigurationError):
            resolve_trace_kernel("turbo")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_KERNEL", raising=False)
        assert default_trace_kernel() == "vector"
        assert resolve_trace_kernel(None) == "vector"
        monkeypatch.setenv("REPRO_TRACE_KERNEL", "scalar")
        assert default_trace_kernel() == "scalar"
        assert resolve_trace_kernel(None) == "scalar"
        # An explicit choice still beats the environment.
        assert resolve_trace_kernel("vector") == "vector"
        monkeypatch.setenv("REPRO_TRACE_KERNEL", "bogus")
        with pytest.raises(ConfigurationError):
            default_trace_kernel()

    def test_profiler_resolves_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_KERNEL", raising=False)
        assert Profiler(engine="trace").trace_kernel == "vector"
        assert (
            Profiler(engine="trace", trace_kernel="scalar").trace_kernel
            == "scalar"
        )
        monkeypatch.setenv("REPRO_TRACE_KERNEL", "scalar")
        assert Profiler(engine="trace").trace_kernel == "scalar"
        with pytest.raises(ConfigurationError):
            Profiler(engine="trace", trace_kernel="nope")

    def test_zero_instructions_rejected(self):
        spec = get_workload("505.mcf_r")
        config = get_machine(PAPER_MACHINE_NAMES[0])
        for kernel in TRACE_KERNELS:
            with pytest.raises(ConfigurationError):
                profile_trace(spec, config, instructions=0, kernel=kernel)
            with pytest.raises(ConfigurationError):
                profile_trace(spec, config, instructions=-5, kernel=kernel)
        with pytest.raises(ConfigurationError):
            Profiler(engine="trace", trace_instructions=0)

    def test_cache_key_distinguishes_trace_kernels_only(self):
        spec = get_workload("505.mcf_r")
        config = get_machine(PAPER_MACHINE_NAMES[0])
        trace_scalar = cache_key(
            spec, config, "trace", 1000, 1, trace_kernel="scalar"
        )
        trace_vector = cache_key(
            spec, config, "trace", 1000, 1, trace_kernel="vector"
        )
        assert trace_scalar != trace_vector
        # The analytic engine has no trace kernel: keys must not differ.
        analytic_scalar = cache_key(
            spec, config, "analytic", 1000, 1, trace_kernel="scalar"
        )
        analytic_vector = cache_key(
            spec, config, "analytic", 1000, 1, trace_kernel="vector"
        )
        assert analytic_scalar == analytic_vector

    def test_cli_flag_threads_into_profiler(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_KERNEL", raising=False)
        from repro.cli import _make_profiler, build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "profile",
                "505.mcf_r",
                "--engine",
                "trace",
                "--trace-kernel",
                "scalar",
                "--no-disk-cache",
            ]
        )
        profiler = _make_profiler(args)
        assert profiler.trace_kernel == "scalar"
        args = parser.parse_args(
            ["profile", "505.mcf_r", "--engine", "trace", "--no-disk-cache"]
        )
        assert _make_profiler(args).trace_kernel == "vector"
