"""Tests for CSV/JSON export."""

import csv
import json

import pytest

from repro.errors import ConfigurationError
from repro.perf.dataset import build_feature_matrix
from repro.reporting.export import (
    feature_matrix_to_csv,
    report_to_dict,
    reports_to_csv,
    tree_to_dict,
    write_json,
)


@pytest.fixture(scope="module")
def matrix(profiler):
    return build_feature_matrix(
        ["505.mcf_r", "541.leela_r"], machines=["skylake-i7-6700"],
        profiler=profiler,
    )


class TestFeatureMatrixCsv:
    def test_round_trip(self, matrix, tmp_path):
        path = feature_matrix_to_csv(matrix, tmp_path / "matrix.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["workload", *matrix.features]
        assert len(rows) == 1 + matrix.n_workloads
        assert float(rows[1][1]) == pytest.approx(matrix.values[0, 0])


class TestReportExport:
    def test_report_to_dict(self, profiler):
        report = profiler.profile("505.mcf_r", "skylake-i7-6700")
        data = report_to_dict(report)
        assert data["workload"] == "505.mcf_r"
        assert "l1d_mpki" in data["metrics"]
        assert "power" in data  # skylake has a power model
        json.dumps(data)  # serializable

    def test_report_without_power(self, profiler):
        report = profiler.profile("505.mcf_r", "sparc-t4")
        data = report_to_dict(report)
        assert "power" not in data

    def test_reports_to_csv(self, profiler, tmp_path):
        reports = [
            profiler.profile(w, "skylake-i7-6700")
            for w in ("505.mcf_r", "541.leela_r")
        ]
        path = reports_to_csv(reports, tmp_path / "reports.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][:2] == ["workload", "machine"]
        assert len(rows) == 3

    def test_reports_to_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            reports_to_csv([], tmp_path / "x.csv")


class TestTreeExport:
    def test_tree_to_dict_structure(self):
        import numpy as np

        from repro.stats.cluster import ClusterTree

        points = np.array([[0.0, 0], [0.1, 0], [5, 5], [5.1, 5]])
        tree = ClusterTree.from_points(points, ["a", "b", "c", "d"])
        data = tree_to_dict(tree)
        assert "children" in data
        leaves = []

        def walk(node):
            if "name" in node:
                leaves.append(node["name"])
            else:
                assert node["distance"] >= 0
                for child in node["children"]:
                    walk(child)

        walk(data)
        assert sorted(leaves) == ["a", "b", "c", "d"]
        json.dumps(data)

    def test_write_json(self, tmp_path):
        path = write_json({"b": 1, "a": 2}, tmp_path / "out.json")
        loaded = json.loads(path.read_text())
        assert loaded == {"a": 2, "b": 1}
