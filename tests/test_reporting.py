"""Tests for the text table / figure rendering helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting import (
    BarSeries,
    ScatterSeries,
    Table,
    format_float,
    render_scatter,
)


class TestFormatFloat:
    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_trims_trailing_zeros(self):
        assert format_float(1.50) == "1.5"
        assert format_float(2.00) == "2"

    def test_large_values_scientific(self):
        assert "e" in format_float(123456.0)

    def test_tiny_values_scientific(self):
        assert "e" in format_float(0.00001)

    def test_precision(self):
        assert format_float(1.23456, precision=4) == "1.2346"


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"])
        table.add_row(["alpha", 1])
        table.add_row(["b", 123456])
        lines = table.render().splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_included(self):
        table = Table(["a"], title="My Title")
        table.add_row([1])
        assert table.render().startswith("My Title")

    def test_none_rendered_as_dash(self):
        table = Table(["a"])
        table.add_row([None])
        assert "-" in table.render().splitlines()[-1]

    def test_wrong_cell_count_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row([1])

    def test_n_rows(self):
        table = Table(["a"])
        table.add_row([1])
        table.add_row([2])
        assert table.n_rows == 2

    def test_str_is_render(self):
        table = Table(["a"])
        table.add_row([1])
        assert str(table) == table.render()

    def test_float_formatting_in_cells(self):
        table = Table(["x"], precision=1)
        table.add_row([3.14159])
        assert "3.1" in table.render()


class TestScatterSeries:
    def test_from_dict(self):
        series = ScatterSeries.from_dict("s", {"a": (1.0, 2.0)})
        assert series.points == (("a", 1.0, 2.0),)
        assert series.xs.tolist() == [1.0]
        assert series.ys.tolist() == [2.0]


class TestBarSeries:
    def test_values(self):
        series = BarSeries("s", (("a", 1.0), ("b", 2.0)))
        assert series.values.tolist() == [1.0, 2.0]


class TestRenderScatter:
    def test_renders_legend_and_frame(self):
        series = ScatterSeries.from_dict("one", {"a": (0, 0), "b": (1, 1)})
        text = render_scatter([series])
        assert "one" in text
        assert text.count("+") >= 4  # frame corners

    def test_multiple_series_distinct_markers(self):
        first = ScatterSeries.from_dict("first", {"a": (0, 0)})
        second = ScatterSeries.from_dict("second", {"b": (1, 1)})
        text = render_scatter([first, second])
        assert "o = first" in text
        assert "x = second" in text

    def test_degenerate_single_point(self):
        series = ScatterSeries.from_dict("s", {"a": (5.0, 5.0)})
        text = render_scatter([series])
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_scatter([])
        with pytest.raises(ConfigurationError):
            render_scatter([ScatterSeries("s", ())])

    def test_axis_ranges_printed(self):
        series = ScatterSeries.from_dict("s", {"a": (-2, 3), "b": (4, -1)})
        text = render_scatter([series], x_label="PCx", y_label="PCy")
        assert "PCx" in text and "PCy" in text
        assert "-2.00" in text and "4.00" in text
