"""Tests for the sampling resource profiler and span propagation.

Covers the DESIGN.md contracts of ``repro.obs.profiling``: sampler
selection and sample collection, first-instance-only alloc probes
(the tracemalloc budget trick), worker profile merging with per-pid
attribution, cross-process span propagation through the executor, and
the flamegraph / top exporters.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import profiling
from repro.obs.trace import TraceContext
from repro.perf.executor import ProfilingExecutor, _profile_chunk
from repro.perf.profiler import Profiler
from repro.uarch.machine import get_machine
from repro.workloads.spec import get_workload


@pytest.fixture(autouse=True)
def _clean_profiling():
    """Every test starts and ends without an active session."""
    profiling.end_session()
    obs.disable()
    obs.reset()
    obs.metrics.reset()
    yield
    profiling.end_session()
    obs.disable()
    obs.reset()
    obs.metrics.reset()


def _spin(seconds: float) -> None:
    """Burn CPU on the current thread (sampleable work)."""
    deadline = time.process_time() + seconds
    while time.process_time() < deadline:
        sum(range(200))


class TestPeakRss:
    def test_positive_and_monotonic(self):
        first = profiling.peak_rss_bytes()
        assert first > 0
        ballast = bytearray(8 << 20)
        second = profiling.peak_rss_bytes()
        assert second >= first
        del ballast


class TestSamplers:
    def test_signal_sampler_collects_cpu_samples(self):
        if not profiling._SignalSampler.usable():
            pytest.skip("signal sampling needs the main thread")
        profiler = profiling.ResourceProfiler(
            mode="cpu", sampler="signal", interval_s=0.001
        )
        profiler.start()
        _spin(0.2)
        data = profiler.stop()
        assert data.sampler == "signal"
        assert data.sample_count > 0
        assert any("_spin" in key for key in data.samples)

    def test_thread_sampler_collects_wall_samples(self):
        profiler = profiling.ResourceProfiler(
            mode="cpu", sampler="thread", interval_s=0.001
        )
        profiler.start()
        _spin(0.2)
        data = profiler.stop()
        assert data.sampler == "thread"
        assert data.sample_count > 0
        assert any("_spin" in key for key in data.samples)

    def test_off_mode_collects_nothing(self):
        profiler = profiling.ResourceProfiler(mode="off")
        profiler.start()
        _spin(0.01)
        data = profiler.stop()
        assert data.sample_count == 0
        assert data.samples == {}
        assert data.sampler == "none"

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            profiling.ResourceProfiler(mode="everything")
        with pytest.raises(ValueError):
            profiling.ResourceProfiler(sampler="perf")

    def test_signal_sampler_restores_previous_handler(self):
        import signal as signal_mod

        if not profiling._SignalSampler.usable():
            pytest.skip("signal sampling needs the main thread")
        before = signal_mod.getsignal(signal_mod.SIGPROF)
        sampler = profiling._SignalSampler(0.01)
        sampler.start()
        sampler.stop()
        assert signal_mod.getsignal(signal_mod.SIGPROF) == before


class TestAllocProbes:
    def test_stage_probe_records_alloc_peak(self):
        session = profiling.start_session("mem")
        with profiling.stage_probe("stage.alloc"):
            ballast = bytearray(4 << 20)
            del ballast
        data = profiling.end_session()
        assert data.stage_alloc_peaks["stage.alloc"] >= 4 << 20
        assert data.peak_alloc_bytes >= 4 << 20
        assert session is not None

    def test_probe_is_noop_without_session(self):
        probe = profiling.stage_probe("anything")
        with probe:
            pass
        assert probe is profiling._NULL_PROBE

    def test_probe_is_noop_in_cpu_mode(self):
        profiling.start_session("cpu")
        assert profiling.stage_probe("x") is profiling._NULL_PROBE
        profiling.end_session()

    def test_first_instance_only(self):
        # The budget trick: only the first instance of each label is
        # traced; repeats (identical for deterministic stages) run
        # untaxed.
        profiling.start_session("mem")
        first = profiling.stage_probe("stage.repeat")
        with first:
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()
        second = profiling.stage_probe("stage.repeat")
        assert second is profiling._NULL_PROBE
        other = profiling.stage_probe("stage.other")
        assert other is not profiling._NULL_PROBE
        with other:
            pass
        profiling.end_session()

    def test_probe_never_stops_foreign_tracemalloc(self):
        profiling.start_session("mem")
        tracemalloc.start()
        try:
            probe = profiling.stage_probe("stage.foreign")
            # A foreign tracemalloc session means no probe at all —
            # starting/stopping would clobber the user's measurement.
            assert probe is profiling._NULL_PROBE
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()
            profiling.end_session()

    def test_alloc_probes_disabled_for_workers(self):
        profiler = profiling.ResourceProfiler(mode="mem", alloc_probes=False)
        assert profiler.alloc_probe("stage.x") is profiling._NULL_PROBE

    def test_clear_inherited_session(self):
        profiling.start_session("mem")
        profiling.clear_inherited_session()
        assert profiling.active_session() is None
        # end_session on the cleared state is a clean no-op.
        assert profiling.end_session() is None


class TestSessionAndMetrics:
    def test_off_session_is_none(self):
        assert profiling.start_session("off") is None
        assert profiling.active_session() is None

    def test_final_stats_survive_obs_disable(self):
        # The CLI snapshots metrics after obs.disable(); the profiler
        # publishes through always-live handles so its gauges survive.
        obs.enable()
        profiling.start_session("all", interval_s=0.001)
        _spin(0.1)
        data = profiling.end_session()
        obs.disable()
        snapshot = obs_metrics.snapshot()
        assert snapshot["counters"]["profiler.samples"] == data.sample_count
        assert (
            snapshot["gauges"]["profiler.peak_rss_bytes"]
            == float(data.peak_rss_bytes)
        )
        assert "profiler.peak_alloc_bytes" in snapshot["gauges"]

    def test_worker_profiles_merge_with_pid_attribution(self):
        profiling.start_session("cpu", interval_s=0.001)
        worker = {
            "samples": {"a;b": 3, "a;c": 2},
            "sample_count": 5,
            "peak_rss_bytes": 123456789,
            "peak_alloc_bytes": 0,
            "stage_alloc_peaks": {"profile.trace": 42},
            "duration_s": 1.5,
        }
        profiling.absorb_worker_profile(worker, pid=4242)
        data = profiling.end_session()
        assert data.samples["a;b"] >= 3
        assert data.peak_rss_bytes >= 123456789
        assert data.stage_alloc_peaks["profile.trace"] >= 42
        assert [w["pid"] for w in data.workers] == [4242]
        assert data.workers[0]["sample_count"] == 5

    def test_profile_data_round_trips_through_json(self):
        profiling.start_session("all", interval_s=0.001)
        _spin(0.05)
        profiling.absorb_worker_profile(
            {"samples": {"x": 1}, "sample_count": 1,
             "peak_rss_bytes": 10, "peak_alloc_bytes": 0,
             "stage_alloc_peaks": {}, "duration_s": 0.1},
            pid=99,
        )
        data = profiling.end_session()
        clone = profiling.ProfileData.from_dict(
            json.loads(json.dumps(data.to_dict()))
        )
        assert clone.to_dict() == data.to_dict()


class TestChunkWorkerProtocol:
    def _payload(self, profile_mode, parent_pid, context=None):
        spec = get_workload("505.mcf_r")
        config = get_machine("skylake-i7-6700")
        return (
            3, "analytic", 200_000, 2017, "vector", "geometry", None,
            [(spec, config)], context, parent_pid, profile_mode, None,
            None,
        )

    def test_remote_chunk_ships_profile(self):
        # parent_pid != os.getpid() simulates a process-backend worker.
        index, outcomes, extras = _profile_chunk(
            self._payload("cpu", parent_pid=os.getpid() + 1)
        )
        assert index == 3
        assert outcomes[0][0] == "ok"
        assert extras["profile"] is not None
        assert extras["profile"]["mode"] == "cpu"
        assert extras["profile"]["sampler"] == "thread"
        assert extras["pid"] == os.getpid()
        # No trace context -> no span capture.
        assert extras["spans"] is None

    def test_remote_chunk_ships_spans_when_traced(self):
        obs.enable()
        with obs.span("fake.sweep") as sweep:
            context = TraceContext(
                trace_id=1, span_id=sweep.span_id, pid=os.getpid() + 1
            )
            _index, _outcomes, extras = _profile_chunk(
                self._payload("off", parent_pid=os.getpid() + 1,
                              context=context)
            )
        obs.disable()
        assert extras["profile"] is None
        names = {entry["name"] for entry in extras["spans"]}
        assert "executor.chunk" in names
        for entry in extras["spans"]:
            assert entry["parent_id"] == sweep.span_id

    def test_local_chunk_ships_nothing(self):
        _index, _outcomes, extras = _profile_chunk(
            self._payload("all", parent_pid=os.getpid())
        )
        assert extras["profile"] is None
        assert extras["spans"] is None

    def test_queue_wait_measured_from_submit_stamp(self):
        payload = self._payload("off", parent_pid=os.getpid())
        payload = payload[:-1] + (time.perf_counter() - 0.25,)
        _index, _outcomes, extras = _profile_chunk(payload)
        assert extras["queue_wait_s"] >= 0.25


class TestExecutorIntegration:
    def _pairs(self):
        specs = [get_workload(n) for n in ("505.mcf_r", "541.leela_r")]
        machines = [get_machine("skylake-i7-6700"), get_machine("opteron-2435")]
        return [(s, m) for s in specs for m in machines]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_profiled_sweep_matches_unprofiled(self, backend):
        plain = ProfilingExecutor(Profiler(), jobs=2, backend=backend).run(
            self._pairs()
        )
        profiling.start_session("all", interval_s=0.005)
        profiled = ProfilingExecutor(
            Profiler(), jobs=2, backend=backend, profile="all"
        ).run(self._pairs())
        data = profiling.end_session()
        assert [r.metrics for r in profiled] == [r.metrics for r in plain]
        if backend == "process":
            assert data.workers
            assert all(w["pid"] != os.getpid() for w in data.workers)

    def test_process_sweep_merges_worker_spans(self):
        obs.enable()
        profiling.start_session("cpu", interval_s=0.005)
        ProfilingExecutor(
            Profiler(), jobs=2, backend="process", profile="cpu"
        ).run(self._pairs())
        profiling.end_session()
        obs.disable()
        own_pid = os.getpid()
        chunk_pids = {
            node.pid
            for root in obs.finished_roots()
            for node in root.walk()
            if node.name == "executor.chunk"
        }
        assert chunk_pids
        assert chunk_pids - {own_pid}, "expected chunk spans from workers"


class TestExporters:
    SAMPLES = {"main;engine;simulate": 6, "main;engine;synthesize": 3,
               "main;io": 1}

    def test_collapsed_format(self):
        text = profiling.collapsed_stacks(self.SAMPLES)
        lines = text.splitlines()
        assert "main;engine;simulate 6" in lines
        assert len(lines) == 3

    def test_flamegraph_html_is_self_contained(self):
        html = profiling.flamegraph_html(self.SAMPLES, title="t & t")
        assert html.startswith("<!DOCTYPE html>")
        assert "t &amp; t" in html
        assert "simulate" in html
        assert "http" not in html  # no external resources
        assert "10 samples" in html

    def test_flamegraph_html_empty(self):
        html = profiling.flamegraph_html({})
        assert "no samples" in html

    def test_top_frames_self_vs_total(self):
        ranked = profiling.top_frames(self.SAMPLES, n=2)
        assert ranked[0]["frame"] == "simulate"
        assert ranked[0]["self_samples"] == 6
        # "engine" has no self samples but 9 total; "main" has 10 total.
        totals = {
            entry["frame"]: entry["total_samples"]
            for entry in profiling.top_frames(self.SAMPLES, n=10)
        }
        assert "engine" not in totals  # no self time -> not ranked
        assert totals["simulate"] == 6

    def test_top_spans_aggregates_across_pids(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("stage"):
                pass
            with obs.span("stage"):
                pass
        obs.disable()
        ranked = profiling.top_spans(obs.finished_roots(), n=5)
        by_name = {entry["name"]: entry for entry in ranked}
        assert by_name["stage"]["calls"] == 2
        assert by_name["stage"]["pids"] == [os.getpid()]

    def test_top_manifest_series_from_histograms(self):
        manifest = {
            "metrics": {
                "histograms": {
                    "span.profile.wall_seconds": {"count": 4, "mean": 0.5},
                    "span.idle.wall_seconds": {"count": 0, "mean": 0.0},
                    "other.histogram": {"count": 9, "mean": 9.0},
                }
            }
        }
        ranked = profiling.top_manifest_series(manifest, n=5)
        assert len(ranked) == 1
        assert ranked[0]["name"] == "profile"
        assert ranked[0]["wall_s"] == pytest.approx(2.0)
