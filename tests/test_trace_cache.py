"""Trace identity (seed scopes) and the shared bounded trace cache."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest

from tests.parity import traces_equal as _traces_equal

from repro.errors import ConfigurationError
from repro.perf.trace_cache import (
    CACHE_BYTES_ENV,
    SEED_SCOPE_ENV,
    SEED_SCOPES,
    TraceCache,
    default_seed_scope,
    default_trace_cache,
    machine_geometry,
    resolve_seed_scope,
    trace_key,
    trace_seed,
)
from repro.perf.trace_engine import _stable_seed, profile_trace
from repro.uarch.machine import PAPER_MACHINE_NAMES, get_machine, paper_machines
from repro.workloads.spec import get_workload
from repro.workloads.synthesis import synthesize_trace

SKYLAKE = get_machine("skylake-i7-6700")
SPARC = get_machine("sparc-t4")
MCF = get_workload("505.mcf_r")
LEELA = get_workload("541.leela_r")


class TestSeedScopeKnob:
    def test_validate_rejects_unknown_scope(self):
        with pytest.raises(ConfigurationError):
            resolve_seed_scope("per-run")

    def test_none_resolves_to_geometry_by_default(self, monkeypatch):
        monkeypatch.delenv(SEED_SCOPE_ENV, raising=False)
        assert resolve_seed_scope(None) == "geometry"

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(SEED_SCOPE_ENV, "machine")
        assert default_seed_scope() == "machine"
        assert resolve_seed_scope(None) == "machine"
        # An explicit choice still wins over the environment.
        assert resolve_seed_scope("geometry") == "geometry"

    def test_bad_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(SEED_SCOPE_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            default_seed_scope()

    def test_profiler_resolves_scope_at_init(self, monkeypatch):
        from repro.perf.profiler import Profiler

        monkeypatch.delenv(SEED_SCOPE_ENV, raising=False)
        assert Profiler(engine="trace").seed_scope == "geometry"
        assert (
            Profiler(engine="trace", seed_scope="machine").seed_scope
            == "machine"
        )
        with pytest.raises(ConfigurationError):
            Profiler(engine="trace", seed_scope="bogus")

    def test_cli_flag_reaches_the_profiler(self, monkeypatch):
        from repro import cli

        monkeypatch.delenv(SEED_SCOPE_ENV, raising=False)
        parser = cli.build_parser()
        args = parser.parse_args(
            [
                "profile",
                "505.mcf_r",
                "skylake-i7-6700",
                "--trace-seed-scope",
                "machine",
                "--no-disk-cache",
            ]
        )
        profiler = cli._make_profiler(args, engine="analytic")
        assert profiler.seed_scope == "machine"

    def test_disk_cache_key_depends_on_scope(self):
        from repro.perf.diskcache import cache_key

        keys = {
            cache_key(MCF, SKYLAKE, "trace", 20_000, 2017, seed_scope=scope)
            for scope in SEED_SCOPES
        }
        assert len(keys) == len(SEED_SCOPES)
        # The analytic engine ignores trace parameters entirely.
        analytic = {
            cache_key(MCF, SKYLAKE, "analytic", 20_000, 2017, seed_scope=scope)
            for scope in SEED_SCOPES
        }
        assert len(analytic) == 1


class TestTraceSeed:
    def test_machine_scope_preserves_historical_formula(self):
        # Bit-exact backwards compatibility: the machine scope must
        # derive exactly the seed the engine always used.
        for machine in (SKYLAKE, SPARC):
            assert trace_seed(2017, MCF, machine, 200_000, "machine") == (
                _stable_seed(2017, MCF.name, machine.name)
            )

    def test_geometry_scope_ignores_the_machine_name(self):
        renamed = replace(SKYLAKE, name="skylake-copy")
        assert trace_seed(2017, MCF, SKYLAKE, 200_000, "geometry") == (
            trace_seed(2017, MCF, renamed, 200_000, "geometry")
        )
        assert trace_seed(2017, MCF, SKYLAKE, 200_000, "machine") != (
            trace_seed(2017, MCF, renamed, 200_000, "machine")
        )

    def test_geometry_scope_keys_on_geometry_and_window(self):
        base = trace_seed(2017, MCF, SKYLAKE, 200_000, "geometry")
        assert trace_seed(2017, MCF, SPARC, 200_000, "geometry") != base
        assert trace_seed(2017, MCF, SKYLAKE, 100_000, "geometry") != base
        assert trace_seed(2018, MCF, SKYLAKE, 200_000, "geometry") != base
        assert trace_seed(2017, LEELA, SKYLAKE, 200_000, "geometry") != base

    def test_equal_geometry_machines_share_a_trace(self):
        # Property (a): under geometry scope, machines with equal
        # (line_bytes, page_bytes) synthesize np.array_equal traces.
        by_geometry = {}
        for machine in paper_machines():
            by_geometry.setdefault(machine_geometry(machine), []).append(
                machine
            )
        assert len(by_geometry) == 2  # the 7 paper machines, 2 geometries
        for geometry, machines in by_geometry.items():
            traces = [
                synthesize_trace(
                    MCF,
                    20_000,
                    seed=trace_seed(2017, MCF, machine, 20_000, "geometry"),
                    line_bytes=geometry[0],
                    page_bytes=geometry[1],
                )
                for machine in machines
            ]
            for other in traces[1:]:
                assert _traces_equal(traces[0], other)

    def test_machine_scope_engine_matches_direct_synthesis(self):
        # Property (b): the machine scope replays exactly the trace the
        # pre-scope engine synthesized (same formula, same arrays).
        cache = TraceCache(capacity_bytes=64 * 1024 * 1024)
        seed = trace_seed(2017, MCF, SKYLAKE, 20_000, "machine")
        direct = synthesize_trace(
            MCF,
            20_000,
            seed=_stable_seed(2017, MCF.name, SKYLAKE.name),
            line_bytes=SKYLAKE.l1d.line_bytes,
            page_bytes=SKYLAKE.dtlb.page_bytes,
        )
        via_cache = cache.get_or_synthesize(
            MCF,
            20_000,
            seed=seed,
            line_bytes=SKYLAKE.l1d.line_bytes,
            page_bytes=SKYLAKE.dtlb.page_bytes,
        )
        assert _traces_equal(direct, via_cache)


class TestTraceCache:
    def test_hit_returns_the_same_frozen_trace(self):
        cache = TraceCache(capacity_bytes=64 * 1024 * 1024)
        first = cache.get_or_synthesize(
            MCF, 10_000, seed=1, line_bytes=64, page_bytes=4096
        )
        second = cache.get_or_synthesize(
            MCF, 10_000, seed=1, line_bytes=64, page_bytes=4096
        )
        assert first is second
        assert not first.data_addresses.flags.writeable
        info = cache.stats()
        assert (info.hits, info.misses, info.entries) == (1, 1, 1)
        assert info.resident_bytes > 0
        assert info.hit_rate == 0.5

    def test_distinct_identities_do_not_collide(self):
        cache = TraceCache(capacity_bytes=64 * 1024 * 1024)
        kwargs = dict(seed=1, line_bytes=64, page_bytes=4096)
        a = cache.get_or_synthesize(MCF, 10_000, **kwargs)
        b = cache.get_or_synthesize(LEELA, 10_000, **kwargs)
        c = cache.get_or_synthesize(MCF, 10_000, seed=2, line_bytes=64,
                                    page_bytes=4096)
        assert cache.stats().misses == 3
        assert not _traces_equal(a, b)
        assert not _traces_equal(a, c)

    def test_spec_content_not_just_name_keys_the_trace(self):
        # A renamed-identical spec shares; a same-named different spec
        # must not (the satellite-2 failure mode, on the trace side).
        perturbed = replace(MCF, data_page_factor=MCF.data_page_factor * 2)
        assert perturbed.name == MCF.name
        assert trace_key(MCF, 10_000, 1, 64, 4096) != trace_key(
            perturbed, 10_000, 1, 64, 4096
        )

    def test_eviction_respects_the_byte_bound(self):
        # Property (c): fill far past a small capacity; residency never
        # exceeds the bound and evictions are oldest-first.
        cache = TraceCache(capacity_bytes=200_000)
        for seed in range(8):
            cache.get_or_synthesize(
                MCF, 10_000, seed=seed, line_bytes=64, page_bytes=4096
            )
            assert cache.stats().resident_bytes <= 200_000
        info = cache.stats()
        assert info.misses == 8
        assert info.evictions > 0
        assert info.entries < 8
        # The most recent insertion is resident; the oldest is not.
        assert cache.get(trace_key(MCF, 10_000, 7, 64, 4096)) is not None
        assert cache.get(trace_key(MCF, 10_000, 0, 64, 4096)) is None

    def test_zero_capacity_disables_retention(self):
        cache = TraceCache(capacity_bytes=0)
        cache.get_or_synthesize(MCF, 5_000, seed=1, line_bytes=64,
                                page_bytes=4096)
        cache.get_or_synthesize(MCF, 5_000, seed=1, line_bytes=64,
                                page_bytes=4096)
        info = cache.stats()
        assert info.misses == 2
        assert info.entries == 0
        assert info.resident_bytes == 0

    def test_clear_zeroes_resident_gauge(self):
        # Regression test: clear() used to leave the last resident
        # figure in the trace_cache.resident_bytes gauge, so manifests
        # of later runs reported memory the cache no longer held.
        from repro import obs

        obs.metrics.reset()
        obs.enable()
        try:
            cache = TraceCache(capacity_bytes=10_000_000)
            cache.get_or_synthesize(MCF, 5_000, seed=1, line_bytes=64,
                                    page_bytes=4096)
            assert (
                obs.snapshot()["gauges"]["trace_cache.resident_bytes"] > 0
            )
            cache.clear()
            assert (
                obs.snapshot()["gauges"]["trace_cache.resident_bytes"] == 0
            )
        finally:
            obs.disable()
            obs.metrics.reset()

    def test_capacity_env_override_and_validation(self, monkeypatch):
        monkeypatch.setenv(CACHE_BYTES_ENV, "12345")
        assert TraceCache().capacity_bytes == 12345
        monkeypatch.setenv(CACHE_BYTES_ENV, "lots")
        with pytest.raises(ConfigurationError):
            TraceCache()
        with pytest.raises(ConfigurationError):
            TraceCache(capacity_bytes=-1)

    def test_eviction_is_deterministic_under_threads(self):
        # Property (c, threaded): the same key sequence produces the
        # same resident set regardless of thread interleaving, because
        # each thread touches its own key after a deterministic warm
        # sequence and equal keys are bit-identical.
        def run_once():
            cache = TraceCache(capacity_bytes=400_000)
            seeds = list(range(6)) * 2
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(
                    pool.map(
                        lambda s: cache.get_or_synthesize(
                            MCF, 10_000, seed=s, line_bytes=64,
                            page_bytes=4096,
                        ),
                        seeds,
                    )
                )
            # Replay serially: resident traces must be bit-identical to
            # a fresh synthesis of the same identity.
            info = cache.stats()
            assert info.resident_bytes <= 400_000
            resident = {
                s
                for s in range(6)
                if cache.get(trace_key(MCF, 10_000, s, 64, 4096)) is not None
            }
            for s in resident:
                cached = cache.get(trace_key(MCF, 10_000, s, 64, 4096))
                assert _traces_equal(
                    cached,
                    synthesize_trace(
                        MCF, 10_000, seed=s, line_bytes=64, page_bytes=4096
                    ),
                )
            return info.misses >= 6

        assert run_once()

    def test_clear_resets_entries_and_stats(self):
        cache = TraceCache(capacity_bytes=64 * 1024 * 1024)
        cache.get_or_synthesize(MCF, 5_000, seed=1, line_bytes=64,
                                page_bytes=4096)
        cache.clear()
        info = cache.stats()
        assert not any(info)  # every counter and gauge, both tiers

    def test_default_cache_is_a_process_singleton(self):
        assert default_trace_cache() is default_trace_cache()


class TestSweepSynthesisSharing:
    def test_seven_machine_sweep_synthesizes_once_per_geometry(self):
        # The tentpole acceptance property, counter-verified: one
        # synthesis per distinct (workload, geometry) under geometry
        # scope — 2 geometries across the 7 paper machines.
        cache = TraceCache(capacity_bytes=256 * 1024 * 1024)
        geometries = {machine_geometry(m) for m in paper_machines()}
        assert len(geometries) == 2
        for workload in (MCF, LEELA):
            for name in PAPER_MACHINE_NAMES:
                profile_trace(
                    workload,
                    get_machine(name),
                    instructions=10_000,
                    seed_scope="geometry",
                    trace_cache=cache,
                )
        info = cache.stats()
        assert info.misses == 2 * len(geometries)  # 2 workloads x 2 geos
        assert info.hits == 2 * (len(PAPER_MACHINE_NAMES) - len(geometries))

    def test_machine_scope_synthesizes_once_per_machine(self):
        cache = TraceCache(capacity_bytes=256 * 1024 * 1024)
        for name in PAPER_MACHINE_NAMES:
            profile_trace(
                MCF,
                get_machine(name),
                instructions=10_000,
                seed_scope="machine",
                trace_cache=cache,
            )
        assert cache.stats().misses == len(PAPER_MACHINE_NAMES)

    def test_scopes_agree_metric_for_metric_within_tolerance(self):
        # Changing the seed scope changes the sampled stream, never the
        # modelled machine: both scopes are valid draws of the same
        # window and agree within sampling noise on the robust metrics.
        from repro.perf.counters import Metric

        geo = profile_trace(
            MCF, SKYLAKE, instructions=40_000, seed_scope="geometry"
        )
        mac = profile_trace(
            MCF, SKYLAKE, instructions=40_000, seed_scope="machine"
        )
        assert geo.metrics[Metric.CPI] == pytest.approx(
            mac.metrics[Metric.CPI], rel=0.1
        )
        assert geo.metrics[Metric.L1D_MPKI] == pytest.approx(
            mac.metrics[Metric.L1D_MPKI], rel=0.15, abs=1.0
        )


class TestPairedReplay:
    def test_null_variant_speedup_is_exactly_one_under_geometry_scope(self):
        # Common random numbers: a variant that changes nothing but the
        # name replays the identical trace under geometry scope, so its
        # speedup is exactly 1.0 for every base seed — the design-space
        # comparison carries no synthesis noise.
        from repro.core.designspace import (
            DesignVariant,
            evaluate_design_space,
        )
        from repro.perf.profiler import Profiler

        null_variant = DesignVariant(
            "null", replace(SKYLAKE, name=f"{SKYLAKE.name}+null")
        )
        for seed in (2017, 7):
            profiler = Profiler(
                engine="trace",
                trace_instructions=10_000,
                seed=seed,
                seed_scope="geometry",
            )
            evaluation = evaluate_design_space(
                ["505.mcf_r", "541.leela_r"],
                [DesignVariant("baseline", SKYLAKE), null_variant],
                profiler=profiler,
            )
            assert evaluation.speedups["null"] == 1.0  # exact, not approx

    def test_null_variant_speedup_is_noisy_under_machine_scope(self):
        # The historical behaviour this PR removes by default: the
        # machine-salted seed resynthesizes a different stream for the
        # renamed config, so even a no-op variant shows spurious
        # "speedup" — pure synthesis noise.
        from repro.core.designspace import (
            DesignVariant,
            evaluate_design_space,
        )
        from repro.perf.profiler import Profiler

        profiler = Profiler(
            engine="trace", trace_instructions=10_000, seed_scope="machine"
        )
        evaluation = evaluate_design_space(
            ["505.mcf_r"],
            [
                DesignVariant("baseline", SKYLAKE),
                DesignVariant(
                    "null", replace(SKYLAKE, name=f"{SKYLAKE.name}+null")
                ),
            ],
            profiler=profiler,
        )
        assert evaluation.speedups["null"] != 1.0

    def test_latency_only_variant_replays_the_same_trace(self):
        # A latency-only variant (same geometry) shares the baseline's
        # trace: its speedup reflects only the structural change, and
        # is identical across base seeds.
        from repro.core.designspace import (
            DesignVariant,
            evaluate_design_space,
        )
        from repro.perf.profiler import Profiler

        faster = replace(
            SKYLAKE,
            name=f"{SKYLAKE.name}+fast-mem",
            latencies=replace(SKYLAKE.latencies, memory=150.0),
        )
        speedups = []
        for seed in (2017, 7):
            profiler = Profiler(
                engine="trace",
                trace_instructions=10_000,
                seed=seed,
                seed_scope="geometry",
            )
            evaluation = evaluate_design_space(
                ["505.mcf_r"],
                [
                    DesignVariant("baseline", SKYLAKE),
                    DesignVariant("fast-mem", faster),
                ],
                profiler=profiler,
            )
            speedups.append(evaluation.speedups["fast-mem"])
        assert speedups[0] > 1.0
        # Paired replay makes the *comparison* seed-invariant even
        # though each seed synthesizes a different stream.
        assert speedups[0] == pytest.approx(speedups[1], rel=0.02)


class TestProfilerPairIdentity:
    def test_same_name_different_config_never_collides(self):
        # Satellite 2: the old (workload name, machine name) key let a
        # same-named different config collide; the content digest must
        # keep them apart.
        from repro.perf.profiler import Profiler

        bigger_l2 = replace(
            SKYLAKE, l2=replace(SKYLAKE.l2, size_bytes=SKYLAKE.l2.size_bytes * 2)
        )
        assert bigger_l2.name == SKYLAKE.name
        profiler = Profiler()
        first = profiler.profile(MCF, SKYLAKE)
        second = profiler.profile(MCF, bigger_l2)
        assert first is not second
        assert profiler.cache_info().misses == 2

    def test_identical_pair_still_hits(self):
        from repro.perf.profiler import Profiler

        profiler = Profiler()
        first = profiler.profile(MCF, SKYLAKE)
        second = profiler.profile(MCF, get_machine("skylake-i7-6700"))
        assert first is second


class TestWorkloadChunks:
    def test_groups_pairs_by_workload(self):
        from repro.perf.executor import workload_chunks

        pairs = [
            (spec, machine)
            for machine in (SKYLAKE, SPARC)
            for spec in (MCF, LEELA)  # machine-major: workloads interleave
        ]
        chunks = workload_chunks(pairs, jobs=1, chunk_size=2)
        # Flattened dispatch order regroups by workload...
        flat = [index for chunk in chunks for index in chunk]
        names = [pairs[i][0].name for i in flat]
        assert names == sorted(names, key=names.index)
        assert names == ["505.mcf_r", "505.mcf_r", "541.leela_r",
                         "541.leela_r"]
        # ...and covers every index exactly once.
        assert sorted(flat) == list(range(len(pairs)))

    def test_chunking_is_deterministic(self):
        from repro.perf.executor import workload_chunks

        pairs = [
            (spec, machine)
            for machine in paper_machines()
            for spec in (MCF, LEELA)
        ]
        assert workload_chunks(pairs, jobs=3) == workload_chunks(pairs, jobs=3)

    def test_grouped_dispatch_preserves_sweep_results(self):
        # The regrouping is dispatch-only: a parallel machine-major
        # sweep returns exactly the serial results, in input order.
        from repro.perf.profiler import Profiler

        serial = Profiler(engine="trace", trace_instructions=5_000)
        parallel = Profiler(engine="trace", trace_instructions=5_000)
        workloads = ["505.mcf_r", "541.leela_r"]
        machines = ["skylake-i7-6700", "sparc-t4"]
        expected = serial.profile_many(workloads, machines, jobs=1)
        actual = parallel.profile_many(
            workloads, machines, jobs=3, backend="thread"
        )
        assert [r.metrics for r in actual] == [r.metrics for r in expected]
        assert [(r.workload, r.machine) for r in actual] == [
            (r.workload, r.machine) for r in expected
        ]
