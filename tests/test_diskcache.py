"""Property and unit tests for the content-addressed disk cache.

The key-space properties use a pure-stdlib randomized harness (seeded
``random.Random``, no hypothesis) as the cache must behave for *any*
workload/machine/engine/parameter combination: distinct tuples never
collide, equal tuples always agree, and round-trips are exact.
"""

from __future__ import annotations

import dataclasses
import pickle
import random

import pytest

from repro.errors import ConfigurationError
from repro.perf.counters import CounterReport
from repro.perf.diskcache import (
    MAGIC,
    DiskCache,
    cache_key,
    canonical_encoding,
    code_version,
)
from repro.perf.profiler import Profiler, compute_report
from repro.uarch.machine import all_machines, get_machine
from repro.workloads.spec import all_workloads, get_workload

SEED = 20170406  # SPEC CPU2017 release date; fixed for reproducibility

MACHINE = get_machine("skylake-i7-6700")
SPEC = get_workload("505.mcf_r")


def _random_tuple(rng: random.Random):
    """One random (workload, machine, engine, params) keying tuple."""
    spec = rng.choice(all_workloads())
    machine = rng.choice(all_machines())
    engine = rng.choice(("analytic", "trace"))
    instructions = rng.choice((50_000, 100_000, 200_000, 400_000))
    seed = rng.randrange(10_000)
    return spec, machine, engine, instructions, seed


def _identity(spec, machine, engine, instructions, seed):
    """What makes two keying tuples semantically equal."""
    return (
        spec.name,
        machine.name,
        engine,
        # analytic profiles ignore trace parameters by design
        (instructions, seed) if engine == "trace" else None,
    )


class TestCacheKeyProperties:
    def test_distinct_tuples_never_collide(self):
        rng = random.Random(SEED)
        seen = {}
        for _ in range(500):
            tup = _random_tuple(rng)
            key = cache_key(*tup)
            identity = _identity(*tup)
            if key in seen:
                assert seen[key] == identity, (
                    f"collision: {identity} vs {seen[key]} -> {key}"
                )
            seen[key] = identity
        assert len(set(seen.values())) == len(seen)

    def test_equal_tuples_agree(self):
        rng = random.Random(SEED + 1)
        for _ in range(100):
            spec, machine, engine, instructions, seed = _random_tuple(rng)
            first = cache_key(spec, machine, engine, instructions, seed)
            again = cache_key(spec, machine, engine, instructions, seed)
            assert first == again

    def test_analytic_key_ignores_trace_params(self):
        a = cache_key(SPEC, MACHINE, "analytic", 100_000, 1)
        b = cache_key(SPEC, MACHINE, "analytic", 999_999, 2)
        assert a == b

    def test_trace_key_depends_on_trace_params(self):
        a = cache_key(SPEC, MACHINE, "trace", 100_000, 1)
        b = cache_key(SPEC, MACHINE, "trace", 200_000, 1)
        c = cache_key(SPEC, MACHINE, "trace", 100_000, 2)
        assert len({a, b, c}) == 3

    def test_any_spec_field_perturbation_changes_key(self):
        rng = random.Random(SEED + 2)
        base = cache_key(SPEC, MACHINE, "analytic", 0, 0)
        for _ in range(30):
            factor = 1.0 + rng.uniform(0.01, 0.5)
            mutated = dataclasses.replace(
                SPEC, icount_billions=SPEC.icount_billions * factor
            )
            assert cache_key(mutated, MACHINE, "analytic", 0, 0) != base

    def test_key_is_hex_sha256(self):
        key = cache_key(SPEC, MACHINE, "analytic", 0, 0)
        assert len(key) == 64
        int(key, 16)  # raises on non-hex

    def test_key_includes_code_version(self, monkeypatch):
        import repro.perf.diskcache as mod

        base = cache_key(SPEC, MACHINE, "analytic", 0, 0)
        monkeypatch.setattr(mod, "_CODE_VERSION", "different-code")
        assert cache_key(SPEC, MACHINE, "analytic", 0, 0) != base

    def test_code_version_is_memoized_and_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestCanonicalEncoding:
    def test_dict_keys_are_sorted(self):
        assert canonical_encoding({"b": 1, "a": 2}) == {"a": 2, "b": 1}

    def test_floats_round_trip_bit_exactly(self):
        value = 0.1 + 0.2  # not 0.3
        assert canonical_encoding(value) == repr(value)
        assert float(canonical_encoding(value)) == value

    def test_unencodable_values_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_encoding(object())


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache")


@pytest.fixture(scope="module")
def report():
    return compute_report(SPEC, MACHINE, "analytic")


class TestRoundTrip:
    def test_store_then_load_is_equal(self, cache, report):
        rng = random.Random(SEED + 3)
        for _ in range(20):
            spec = rng.choice(all_workloads())
            machine = rng.choice(all_machines())
            original = compute_report(spec, machine, "analytic")
            key = cache_key(spec, machine, "analytic", 0, 0)
            cache.store(key, original)
            loaded = cache.load(key)
            assert loaded == original  # dataclass equality: exact floats

    def test_missing_key_is_none(self, cache):
        assert cache.load("0" * 64) is None

    def test_contains_and_len(self, cache, report):
        key = cache_key(SPEC, MACHINE, "analytic", 0, 0)
        assert key not in cache
        cache.store(key, report)
        assert key in cache
        assert len(cache) == 1

    def test_store_is_idempotent(self, cache, report):
        key = cache_key(SPEC, MACHINE, "analytic", 0, 0)
        cache.store(key, report)
        cache.store(key, report)
        assert len(cache) == 1
        assert cache.load(key) == report


class TestCorruption:
    """Any damaged entry must degrade to a miss, never to a crash."""

    def _stored(self, cache, report):
        key = cache_key(SPEC, MACHINE, "analytic", 0, 0)
        path = cache.store(key, report)
        return key, path

    def test_truncated_file_is_a_miss(self, cache, report):
        rng = random.Random(SEED + 4)
        for _ in range(10):
            key, path = self._stored(cache, report)
            blob = path.read_bytes()
            path.write_bytes(blob[: rng.randrange(len(blob))])
            assert cache.load(key) is None
            assert not path.exists()  # damaged entry is dropped

    def test_flipped_payload_byte_is_a_miss(self, cache, report):
        rng = random.Random(SEED + 5)
        for _ in range(10):
            key, path = self._stored(cache, report)
            blob = bytearray(path.read_bytes())
            position = rng.randrange(len(MAGIC) + 65, len(blob))
            blob[position] ^= 0xFF
            path.write_bytes(bytes(blob))
            assert cache.load(key) is None

    def test_garbage_file_is_a_miss(self, cache):
        key = cache_key(SPEC, MACHINE, "analytic", 0, 0)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a cache entry at all")
        assert cache.load(key) is None

    def test_wrong_pickled_type_is_a_miss(self, cache):
        import hashlib

        key = cache_key(SPEC, MACHINE, "analytic", 0, 0)
        payload = pickle.dumps({"not": "a report"})
        blob = (
            MAGIC + hashlib.sha256(payload).hexdigest().encode()
            + b"\n" + payload
        )
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(blob)
        assert cache.load(key) is None

    def test_corruption_falls_back_to_recompute(self, tmp_path):
        profiler = Profiler(cache_dir=tmp_path)
        report = profiler.profile(SPEC, MACHINE)
        entry = next(iter(profiler.disk_cache._entries()))
        entry.write_bytes(b"\x00" * 10)
        fresh = Profiler(cache_dir=tmp_path)
        assert fresh.profile(SPEC, MACHINE) == report
        assert fresh.cache_info().misses == 1
        assert fresh.cache_info().disk_hits == 0


class TestAtomicityAndEviction:
    def test_no_temp_files_left_after_store(self, cache, report):
        cache.store(cache_key(SPEC, MACHINE, "analytic", 0, 0), report)
        assert not list(cache.root.rglob("*.part"))

    def test_failed_store_leaves_no_partial_file(self, cache, monkeypatch):
        class Unpicklable(CounterReport):
            def __reduce__(self):
                raise RuntimeError("cannot serialize")

        with pytest.raises(Exception):
            cache.store("ab" * 32, Unpicklable.__new__(Unpicklable))
        assert not list(cache.root.rglob("*"))  # nothing written at all

    def test_clear_removes_everything(self, cache, report):
        for seed in range(5):
            cache.store(cache_key(SPEC, MACHINE, "trace", 1000, seed), report)
        assert len(cache) == 5
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_prune_keeps_newest(self, cache, report):
        import os

        keys = [cache_key(SPEC, MACHINE, "trace", 1000, s) for s in range(6)]
        for age, key in enumerate(keys):
            path = cache.store(key, report)
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        assert cache.prune(max_entries=2) == 4
        assert len(cache) == 2
        assert cache.load(keys[-1]) is not None
        assert cache.load(keys[-2]) is not None
        assert cache.load(keys[0]) is None

    def test_prune_rejects_negative(self, cache):
        with pytest.raises(ConfigurationError):
            cache.prune(-1)
