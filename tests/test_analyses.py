"""Tests for the Section IV/V analyses (input sets, rate/speed,
classification, domains, balance, power, case studies, sensitivity)."""

import numpy as np
import pytest

from repro.core.classification import (
    branch_space,
    dcache_space,
    extremes,
    icache_space,
)
from repro.core.domain_analysis import analyze_domains
from repro.core.inputsets import PAPER_REPRESENTATIVE_INPUTS, analyze_input_sets
from repro.core.sensitivity import (
    SENSITIVITY_CHARACTERISTICS,
    classify_sensitivity,
)
from repro.errors import AnalysisError
from repro.perf.counters import Metric
from repro.workloads.spec import Suite


class TestInputSets:
    def test_every_multi_input_benchmark_gets_a_representative(
        self, input_set_analysis
    ):
        expected = {
            "500.perlbench_r", "502.gcc_r", "525.x264_r", "557.xz_r",
            "600.perlbench_s", "602.gcc_s", "625.x264_s", "657.xz_s",
        }
        assert set(input_set_analysis.representative) == expected

    def test_representatives_are_valid_indices(self, input_set_analysis):
        from repro.workloads.spec import get_workload

        for name, index in input_set_analysis.representative.items():
            indices = {i.index for i in get_workload(name).input_sets}
            assert index in indices

    def test_variance_covered_high(self, input_set_analysis):
        assert input_set_analysis.variance_covered > 0.85

    def test_input_sets_cluster_together(self, input_set_analysis):
        """Section IV-C: CPU2017 inputs of one benchmark behave alike —
        the spread among a benchmark's inputs is small relative to the
        overall workload-space scale."""
        scale = float(np.median(
            input_set_analysis.distances[input_set_analysis.distances > 0]
        ))
        for name, cohesion in input_set_analysis.input_cohesion.items():
            assert cohesion < scale, name

    def test_fp_analysis_covers_bwaves(self, profiler):
        analysis = analyze_input_sets(
            suites=(Suite.SPEC2017_RATE_FP, Suite.SPEC2017_SPEED_FP),
            profiler=profiler,
        )
        assert set(analysis.representative) == {"503.bwaves_r", "603.bwaves_s"}

    def test_explicit_benchmark_list(self, profiler):
        analysis = analyze_input_sets(benchmarks=["502.gcc_r"], profiler=profiler)
        assert set(analysis.representative) == {"502.gcc_r"}

    def test_distance_lookup(self, input_set_analysis):
        labels = input_set_analysis.labels
        assert input_set_analysis.distance_between(labels[0], labels[1]) >= 0.0
        with pytest.raises(AnalysisError):
            input_set_analysis.distance_between("ghost", labels[0])

    def test_matches_paper_table7(self, input_set_analysis):
        """Table VII reproduction for the INT benchmarks."""
        matches = sum(
            input_set_analysis.representative.get(name) == index
            for name, index in PAPER_REPRESENTATIVE_INPUTS.items()
            if name in input_set_analysis.representative
        )
        total = sum(
            1 for name in PAPER_REPRESENTATIVE_INPUTS
            if name in input_set_analysis.representative
        )
        assert matches >= total - 2  # allow at most two deviations


class TestRateSpeed:
    def test_every_pair_measured(self, rate_speed_comparison):
        assert len(rate_speed_comparison.int_pairs) == 10
        assert len(rate_speed_comparison.fp_pairs) == 9

    def test_pair_distances_nonnegative(self, rate_speed_comparison):
        for pair in rate_speed_comparison.pairs:
            assert pair.distance >= 0.0
            assert pair.cophenetic >= pair.distance * 0.0  # both defined

    def test_family_extraction(self, rate_speed_comparison):
        families = {p.family for p in rate_speed_comparison.int_pairs}
        assert "mcf" in families and "xalancbmk" in families

    def test_imagick_most_different_fp_pair(self, rate_speed_comparison):
        """Section IV-D: imagick has by far the largest rate/speed gap."""
        ranked = rate_speed_comparison.ranked("fp")
        assert ranked[0].family == "imagick"

    def test_fp_differs_more_than_int_on_average(self, rate_speed_comparison):
        """Section IV-D: FP pairs show bigger rate/speed differences."""
        fp = np.mean([p.distance for p in rate_speed_comparison.fp_pairs])
        int_ = np.mean([p.distance for p in rate_speed_comparison.int_pairs])
        assert fp > int_

    def test_similar_pairs_exist(self, rate_speed_comparison):
        """Most twins are near-identical (leela, exchange2, deepsjeng...)."""
        close = [p for p in rate_speed_comparison.int_pairs if p.distance < 1.0]
        assert len(close) >= 4

    def test_different_pairs_category_validation(self, rate_speed_comparison):
        with pytest.raises(AnalysisError):
            rate_speed_comparison.different_pairs("simd")

    def test_paper_outlier_families_flagged(self, rate_speed_comparison):
        flagged = {p.family for p in rate_speed_comparison.different_pairs("fp")}
        assert "imagick" in flagged


class TestClassification:
    def test_branch_space_contains_all_43(self, profiler):
        space = branch_space(profiler=profiler)
        assert len(space.points) == 43

    def test_branch_extremes_match_paper(self, profiler):
        """Fig 9: leela and mcf suffer the worst mispredictions."""
        worst = [name for name, _ in extremes(Metric.BRANCH_MPKI, top=4)]
        families = {w.split(".")[1].rsplit("_", 1)[0] for w in worst}
        assert "leela" in families and "mcf" in families

    def test_taken_extremes_match_paper(self, profiler):
        """Fig 9: mcf and gcc have the highest taken-branch rates."""
        worst = [
            name
            for name, _ in extremes(Metric.BRANCH_TAKEN_PKI, top=6)
        ]
        families = {w.split(".")[1].rsplit("_", 1)[0] for w in worst}
        assert families & {"mcf", "gcc", "xalancbmk"}

    def test_dcache_extremes_match_paper(self, profiler):
        """Fig 10: mcf, cactuBSSN and fotonik3d have the worst data
        locality."""
        worst = [name for name, _ in extremes(Metric.L1D_MPKI, top=8)]
        families = {w.split(".")[1].rsplit("_", 1)[0] for w in worst}
        assert {"cactubssn", "fotonik3d"} <= families

    def test_icache_extremes_match_paper(self, profiler):
        """Fig 10: perlbench and gcc lead instruction-cache activity."""
        worst = [name for name, _ in extremes(Metric.L1I_MPKI, top=6)]
        families = {w.split(".")[1].rsplit("_", 1)[0] for w in worst}
        assert "gcc" in families

    def test_spaces_have_dominant_feature_metadata(self, profiler):
        for space in (
            branch_space(profiler=profiler),
            dcache_space(profiler=profiler),
            icache_space(profiler=profiler),
        ):
            assert 1 in space.dominated_by
            assert space.variance_covered > 0.4

    def test_unknown_workload_coordinates(self, profiler):
        space = branch_space(profiler=profiler)
        with pytest.raises(AnalysisError):
            space.coordinates("999.ghost")

    def test_extremes_top_validation(self, profiler):
        with pytest.raises(AnalysisError):
            extremes(Metric.CPI, top=0)


class TestDomains:
    @pytest.fixture(scope="class")
    def report(self, profiler):
        return analyze_domains(profiler=profiler)

    def test_every_domain_has_at_least_one_distinct(self, report):
        from repro.workloads.domains import all_domains

        for domain in all_domains():
            assert len(report.distinct[domain]) >= 1, domain

    def test_biomedical_single_member(self, report):
        assert report.distinct["Biomedical"] == ("510.parest_r",)

    def test_rate_preferred_for_similar_twins(self, report):
        """For twins that behave alike only the rate version is marked
        (e.g. deepsjeng); speed twins appear only when they differ."""
        ai = report.distinct["Artificial intelligence"]
        assert "531.deepsjeng_r" in ai
        assert "631.deepsjeng_s" not in ai

    def test_distinct_members_belong_to_domain(self, report):
        from repro.workloads.domains import all_domains

        mapping = all_domains()
        for domain, members in report.distinct.items():
            for member in members:
                assert member in mapping[domain]


class TestSensitivity:
    @pytest.fixture(scope="class", params=sorted(SENSITIVITY_CHARACTERISTICS))
    def report(self, request, profiler):
        return classify_sensitivity(request.param, profiler=profiler)

    def test_partition_covers_all_43(self, report):
        assert len(report.high) + len(report.medium) + len(report.low) == 43

    def test_partition_disjoint(self, report):
        assert not set(report.high) & set(report.medium)
        assert not set(report.medium) & set(report.low)

    def test_high_more_variable_than_low(self, report):
        high_spread = np.mean([report.rank_spread[w] for w in report.high])
        low_spread = np.mean([report.rank_spread[w] for w in report.low])
        assert high_spread > low_spread

    def test_level_lookup(self, report):
        workload = report.high[0]
        assert report.level_of(workload) == "high"
        with pytest.raises(AnalysisError):
            report.level_of("ghost")

    def test_unknown_characteristic_rejected(self, profiler):
        with pytest.raises(AnalysisError):
            classify_sensitivity("l4_cache", profiler=profiler)

    def test_needs_two_machines(self, profiler):
        with pytest.raises(AnalysisError):
            classify_sensitivity(
                "branch_prediction", machines=["skylake-i7-6700"], profiler=profiler
            )

    def test_leela_branch_insensitive(self, profiler):
        """Paper caveat: leela mispredicts the worst on *every* machine,
        which makes it branch-insensitive (stable rank)."""
        report = classify_sensitivity("branch_prediction", profiler=profiler)
        assert report.level_of("541.leela_r") in ("low", "medium")
