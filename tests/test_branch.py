"""Unit tests for the branch predictor simulators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.branch import (
    BimodalPredictor,
    GSharePredictor,
    PredictorSpec,
    StaticPredictor,
    TournamentPredictor,
    build_predictor,
)


class TestPredictorSpec:
    def test_defaults_valid(self):
        spec = PredictorSpec()
        assert spec.kind == "gshare"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="neural"),
            dict(strength=1.5),
            dict(table_entries=-1),
            dict(mispredict_penalty=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PredictorSpec(**kwargs)

    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("static", StaticPredictor),
            ("bimodal", BimodalPredictor),
            ("gshare", GSharePredictor),
            ("tournament", TournamentPredictor),
        ],
    )
    def test_build_predictor_dispatch(self, kind, cls):
        predictor = build_predictor(PredictorSpec(kind=kind, table_entries=4096))
        assert isinstance(predictor, cls)

    def test_build_rounds_table_to_power_of_two(self):
        predictor = build_predictor(PredictorSpec(kind="bimodal", table_entries=5000))
        assert predictor._counters.size == 4096


class TestStaticPredictor:
    def test_always_taken(self):
        predictor = StaticPredictor(taken=True)
        assert predictor.predict(0x1234) is True
        predictor.update(0x1234, False)
        assert predictor.predict(0x1234) is True


class TestBimodalPredictor:
    def test_learns_steady_direction(self):
        predictor = BimodalPredictor(256)
        for _ in range(4):
            predictor.update(10, False)
        assert predictor.predict(10) is False

    def test_hysteresis_tolerates_single_flip(self):
        predictor = BimodalPredictor(256)
        for _ in range(4):
            predictor.update(10, True)
        predictor.update(10, False)  # one anomaly
        assert predictor.predict(10) is True

    def test_table_size_power_of_two_required(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(1000)

    def test_biased_stream_accuracy(self):
        predictor = BimodalPredictor(1024)
        rng = np.random.default_rng(0)
        correct = 0
        n = 20_000
        for _ in range(n):
            taken = bool(rng.random() < 0.9)
            correct += predictor.predict_and_update(7, taken)
        assert correct / n > 0.85

    def test_alternating_stream_defeats_bimodal(self):
        predictor = BimodalPredictor(1024)
        correct = 0
        n = 1000
        for i in range(n):
            correct += predictor.predict_and_update(7, i % 2 == 0)
        assert correct / n < 0.6


class TestGShare:
    def test_learns_periodic_pattern(self):
        # gshare with global history learns short periodic patterns that
        # defeat a bimodal predictor.
        predictor = GSharePredictor(4096, history_bits=8)
        pattern = [True, True, False, True]
        correct = 0
        n = 8000
        for i in range(n):
            correct += predictor.predict_and_update(3, pattern[i % 4])
        assert correct / n > 0.95

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(1000)
        with pytest.raises(ConfigurationError):
            GSharePredictor(1024, history_bits=0)


class TestTournament:
    def test_beats_or_matches_components_on_mixed_workload(self):
        rng = np.random.default_rng(1)
        streams = []
        # branch 1: heavily biased (bimodal-friendly)
        streams += [(1, bool(rng.random() < 0.95)) for _ in range(4000)]
        # branch 2: periodic (gshare-friendly)
        pattern = [True, False, False, True]
        streams += [(2, pattern[i % 4]) for i in range(4000)]
        rng.shuffle(streams)

        def accuracy(predictor):
            correct = sum(
                predictor.predict_and_update(pc, taken) for pc, taken in streams
            )
            return correct / len(streams)

        tournament = accuracy(TournamentPredictor(4096))
        bimodal = accuracy(BimodalPredictor(4096))
        assert tournament >= bimodal - 0.02

    def test_predict_and_update_reports_correctness(self):
        predictor = TournamentPredictor(1024)
        result = predictor.predict_and_update(5, predictor.predict(5))
        assert result is True


class TestPredictorOrdering:
    def test_stronger_machines_mispredict_less_on_hard_stream(self):
        """A gshare with history should beat static on a patterned stream."""
        pattern = [True, False, True, True, False, False]
        static = StaticPredictor()
        gshare = GSharePredictor(8192, history_bits=10)
        static_correct = gshare_correct = 0
        for i in range(6000):
            taken = pattern[i % 6]
            static_correct += static.predict_and_update(9, taken)
            gshare_correct += gshare.predict_and_update(9, taken)
        assert gshare_correct > static_correct
