"""Tests for the persistent feature-matrix store and analysis engine.

Covers the on-disk format (checksummed schema, per-row ledger, memmap
growth), tamper detection, and the engine's two refresh paths: cold
(exact refit, bit-comparable with the batch pipeline) and warm
(incremental appends with state persisted across processes).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from tests.parity import stable_seed
from repro import obs
from repro.core.feature_store import AnalysisEngine, FeatureMatrixStore
from repro.errors import AnalysisError, ConfigurationError
from repro.stats.kmeans import kmeans
from repro.stats.pca import fit_pca


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.metrics.reset()
    yield
    obs.disable()
    obs.reset()
    obs.metrics.reset()


FEATURES = ("ipc", "l1d_mpki", "l2_mpki", "branch_mpki")


def _matrix(n: int, *parts, d: int = len(FEATURES)) -> np.ndarray:
    rng = np.random.default_rng(stable_seed("feature_store", n, d, *parts))
    centers = rng.normal(size=(3, d)) * 2.0
    return np.stack(
        [centers[i % 3] + rng.normal(size=d) * 0.4 for i in range(n)]
    )


def _filled_store(tmp_path, n=6, name="store"):
    store = FeatureMatrixStore.create(tmp_path / name, FEATURES)
    matrix = _matrix(n)
    for i, row in enumerate(matrix):
        store.append_workload(f"w{i:03d}", row)
    return store, matrix


# ----------------------------------------------------------------------
# store lifecycle
# ----------------------------------------------------------------------


class TestFeatureMatrixStore:
    def test_create_append_and_read_back(self, tmp_path):
        store, matrix = _filled_store(tmp_path)
        assert store.rows == 6
        assert store.features == FEATURES
        assert store.n_features == len(FEATURES)
        assert store.labels == tuple(f"w{i:03d}" for i in range(6))
        assert (store.values() == matrix).all()
        assert (store.row(2) == matrix[2]).all()

    def test_create_refuses_existing_directory(self, tmp_path):
        FeatureMatrixStore.create(tmp_path / "s", FEATURES)
        with pytest.raises(ConfigurationError, match="exists"):
            FeatureMatrixStore.create(tmp_path / "s", FEATURES)

    def test_create_requires_features(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FeatureMatrixStore.create(tmp_path / "s", ())
        with pytest.raises(ConfigurationError):
            FeatureMatrixStore.create(tmp_path / "s", ("a", "a"))

    def test_reopen_preserves_everything(self, tmp_path):
        store, matrix = _filled_store(tmp_path)
        digest = store.digest()
        reopened = FeatureMatrixStore.open(store.directory)
        assert reopened.labels == store.labels
        assert (reopened.values() == matrix).all()
        assert reopened.digest() == digest
        assert reopened.schema_checksum() == store.schema_checksum()

    def test_growth_past_initial_capacity(self, tmp_path):
        store = FeatureMatrixStore.create(tmp_path / "s", FEATURES)
        matrix = _matrix(70)
        for i, row in enumerate(matrix):
            store.append_workload(f"w{i:03d}", row)
        assert store.rows == 70
        assert (store.values() == matrix).all()
        reopened = FeatureMatrixStore.open(store.directory)
        assert (reopened.values() == matrix).all()

    def test_append_machine_block_ravels_one_row(self, tmp_path):
        # Campaign-space stores: one raveled (workloads x metrics)
        # block per machine.
        block_features = tuple(
            f"w{i}.{m}" for i in range(3) for m in FEATURES
        )
        store = FeatureMatrixStore.create(
            tmp_path / "s", block_features
        )
        block = _matrix(3)
        store.append_machine_block("m0", block)
        assert store.rows == 1
        assert (store.row(0) == block.ravel()).all()

    def test_duplicate_label_rejected(self, tmp_path):
        store, _ = _filled_store(tmp_path)
        with pytest.raises(ConfigurationError, match="w001"):
            store.append_workload("w001", np.ones(len(FEATURES)))

    def test_bad_rows_rejected(self, tmp_path):
        store, _ = _filled_store(tmp_path)
        with pytest.raises(AnalysisError):
            store.append_workload("bad", np.ones(len(FEATURES) + 1))
        with pytest.raises(AnalysisError, match="finite"):
            store.append_workload(
                "bad", np.array([1.0, np.nan, 1.0, 1.0])
            )
        assert store.rows == 6  # nothing landed

    def test_verify_detects_tampered_rows(self, tmp_path):
        store, _ = _filled_store(tmp_path)
        assert store.verify() is True
        matrix = np.lib.format.open_memmap(
            store.matrix_path, mode="r+"
        )
        matrix[3, 0] += 1.0
        matrix.flush()
        del matrix
        reopened = FeatureMatrixStore.open(store.directory)
        with pytest.raises(AnalysisError, match="checksum"):
            reopened.verify()

    def test_open_detects_tampered_schema(self, tmp_path):
        store, _ = _filled_store(tmp_path)
        schema_path = store.directory / "schema.json"
        payload = json.loads(schema_path.read_text())
        payload["features"] = list(payload["features"]) + ["extra"]
        schema_path.write_text(json.dumps(payload))
        with pytest.raises(AnalysisError, match="checksum"):
            FeatureMatrixStore.open(store.directory)

    def test_digest_tracks_content(self, tmp_path):
        a, _ = _filled_store(tmp_path, name="a")
        b, _ = _filled_store(tmp_path, name="b")
        assert a.digest() == b.digest()
        b.append_workload("wxyz", np.ones(len(FEATURES)))
        assert a.digest() != b.digest()


# ----------------------------------------------------------------------
# analysis engine
# ----------------------------------------------------------------------


class TestAnalysisEngine:
    def test_refresh_needs_two_rows(self, tmp_path):
        store = FeatureMatrixStore.create(tmp_path / "s", FEATURES)
        store.append_workload("only", np.ones(len(FEATURES)))
        engine = AnalysisEngine(store, clusters=2)
        with pytest.raises(AnalysisError, match="at least two"):
            engine.refresh()

    def test_cold_refresh_matches_batch_pipeline_bitwise(self, tmp_path):
        store, matrix = _filled_store(tmp_path, n=12)
        engine = AnalysisEngine(store, clusters=3, seed=2017)
        analysis = engine.refresh()
        pca = fit_pca(matrix, FEATURES)
        points = pca.retained_scores()
        clustering = kmeans(points, 3, seed=2017)
        assert analysis["rows"] == 12
        assert analysis["kaiser_components"] == pca.kaiser_components
        assert analysis["clusters"] == clustering.clusters(
            list(store.labels)
        )
        assert analysis["representatives"] == clustering.representatives(
            points, list(store.labels)
        )
        assert analysis["inertia"] == clustering.inertia
        assert analysis["drift"] == 0.0

    def test_refresh_without_new_rows_is_a_noop(self, tmp_path):
        obs.enable()
        store, _ = _filled_store(tmp_path, n=8)
        engine = AnalysisEngine(store, clusters=3)
        first = engine.refresh()
        obs.metrics.reset()
        second = engine.refresh()
        assert second == first
        counters = obs.metrics.snapshot()["counters"]
        assert counters["analysis.refresh_noops"] == 1.0

    def test_state_survives_a_process_boundary(self, tmp_path):
        store, _ = _filled_store(tmp_path, n=10)
        engine = AnalysisEngine(store, clusters=3, seed=2017)
        engine.refresh()
        report = engine.append("fresh", _matrix(1, "x")[0])

        reopened = FeatureMatrixStore.open(store.directory)
        resumed = AnalysisEngine(reopened, clusters=3, seed=2017)
        analysis = resumed.refresh()
        assert analysis["rows"] == 11
        assert resumed.pca.refactorizations >= 1
        # The resumed engine starts from the persisted state, not a
        # cold refit of everything.
        assert analysis["refactorizations"] == report["refactorizations"]

    def test_corrupted_state_falls_back_to_cold_start(self, tmp_path):
        obs.enable()
        store, _ = _filled_store(tmp_path, n=10)
        engine = AnalysisEngine(store, clusters=3, seed=2017)
        baseline = engine.refresh()
        state_path = engine.directory / "state.json"
        state_path.write_text(state_path.read_text()[:-20])
        obs.metrics.reset()
        recovered = AnalysisEngine(store, clusters=3, seed=2017)
        analysis = recovered.refresh()
        counters = obs.metrics.snapshot()["counters"]
        assert counters["analysis.state_resets"] == 1.0
        for key in ("rows", "kaiser_components", "clusters",
                    "representatives", "inertia"):
            assert analysis[key] == baseline[key]

    def test_identity_mismatch_resets_state(self, tmp_path):
        store, _ = _filled_store(tmp_path, n=10)
        AnalysisEngine(store, clusters=3, seed=2017).refresh()
        other = AnalysisEngine(store, clusters=4, seed=2017)
        assert not other.pca.fitted  # different identity -> cold

    def test_append_reports_coordinates_cluster_and_impact(self, tmp_path):
        store, _ = _filled_store(tmp_path, n=10)
        engine = AnalysisEngine(store, clusters=3, seed=2017)
        engine.refresh()
        report = engine.append("fresh", _matrix(1, "append")[0])
        assert report["label"] == "fresh"
        assert report["index"] == 10
        assert len(report["coordinates"]) >= 1
        assert 0 <= report["cluster"] < 3
        assert "fresh" in report["cluster_members"]
        impact = report["subset_impact"]
        assert set(impact) == {
            "changed_representatives", "subset_changed", "representatives"
        }
        assert isinstance(impact["subset_changed"], bool)
        assert store.rows == 11  # the row landed in the store

    def test_force_refactorization_restores_exactness(self, tmp_path):
        store, matrix = _filled_store(tmp_path, n=10)
        engine = AnalysisEngine(store, clusters=3, seed=2017)
        engine.refresh()
        new_row = _matrix(1, "force")[0]
        engine.append("fresh", new_row)
        engine.force_refactorization()
        assert engine.pca.drift == 0.0
        batch = fit_pca(store.values(), FEATURES)
        exact = engine.pca.result(store.values())
        assert (exact.eigenvalues == batch.eigenvalues).all()
        assert (exact.loadings == batch.loadings).all()
        assert (exact.scores == batch.scores).all()
