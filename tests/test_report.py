"""Tests for the one-command reproduction report."""

import pytest

from repro.reporting.report import generate_report


@pytest.fixture(scope="module")
def report_text(tmp_path_factory, profiler):
    path = generate_report(
        tmp_path_factory.mktemp("report") / "REPORT.md", profiler=profiler
    )
    return path.read_text()


class TestGenerateReport:
    def test_header_cites_the_paper(self, report_text):
        assert "Wait of a Decade" in report_text
        assert "HPCA 2018" in report_text

    def test_all_sections_present(self, report_text):
        for section in (
            "## CPI calibration",
            "## Representative subsets",
            "## Representative input sets",
            "## Suite balance",
            "## Power spectrum",
            "## Emerging workloads",
        ):
            assert section in report_text, section

    def test_subset_table_contains_anchors(self, report_text):
        assert "505.mcf_r" in report_text
        assert "507.cactubssn_r" in report_text

    def test_input_sets_match_count_reported(self, report_text):
        assert "/10 match the paper" in report_text

    def test_uncovered_benchmarks_listed(self, report_text):
        for name in ("429.mcf", "445.gobmk", "473.astar"):
            assert name in report_text

    def test_markdown_tables_well_formed(self, report_text):
        lines = report_text.splitlines()
        for i, line in enumerate(lines):
            if set(line.replace(" ", "")) == {"|", "-"} and line.startswith("|"):
                # separator row: the header above must have the same
                # number of columns
                assert lines[i - 1].count("|") == line.count("|")

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "R.md"
        assert main(["report", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "Reproduction report" in out_file.read_text()
