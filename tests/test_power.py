"""Unit tests for the RAPL-style power model."""

import pytest

from repro.errors import ConfigurationError
from repro.uarch.power import PowerModel, PowerSample

MODEL = PowerModel(
    core_static_watts=8.0,
    energy_per_instruction_nj=0.8,
    energy_per_fp_nj=1.2,
    energy_per_simd_nj=2.4,
    llc_static_watts=1.0,
    energy_per_llc_access_nj=4.0,
    dram_static_watts=2.0,
    energy_per_dram_access_nj=20.0,
)


def sample(**overrides):
    kwargs = dict(
        frequency_ghz=3.0,
        cpi=1.0,
        fp_fraction=0.0,
        simd_fraction=0.0,
        llc_accesses_per_ki=1.0,
        dram_accesses_per_ki=0.5,
    )
    kwargs.update(overrides)
    return MODEL.sample(**kwargs)


class TestPowerModel:
    def test_static_floor(self):
        s = sample(cpi=1000.0, llc_accesses_per_ki=0, dram_accesses_per_ki=0)
        assert s.core_watts == pytest.approx(8.0, rel=0.01)
        assert s.llc_watts == pytest.approx(1.0, rel=0.01)
        assert s.dram_watts == pytest.approx(2.0, rel=0.01)

    def test_higher_ipc_burns_more_core_power(self):
        fast = sample(cpi=0.4)
        slow = sample(cpi=1.2)
        assert fast.core_watts > slow.core_watts

    def test_fp_work_costs_more_than_int(self):
        scalar = sample(fp_fraction=0.0)
        fp = sample(fp_fraction=0.4)
        assert fp.core_watts > scalar.core_watts

    def test_simd_work_costs_more_than_scalar_fp(self):
        fp = sample(fp_fraction=0.4, simd_fraction=0.0)
        simd = sample(fp_fraction=0.4, simd_fraction=0.4)
        assert simd.core_watts > fp.core_watts

    def test_llc_power_scales_with_traffic(self):
        quiet = sample(llc_accesses_per_ki=0.1)
        busy = sample(llc_accesses_per_ki=20.0)
        assert busy.llc_watts > quiet.llc_watts

    def test_dram_power_scales_with_misses(self):
        quiet = sample(dram_accesses_per_ki=0.0)
        busy = sample(dram_accesses_per_ki=5.0)
        assert busy.dram_watts > quiet.dram_watts

    def test_frequency_scales_dynamic_power(self):
        slow = sample(frequency_ghz=1.0)
        fast = sample(frequency_ghz=4.0)
        assert fast.core_watts > slow.core_watts

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            sample(cpi=0.0)
        with pytest.raises(ConfigurationError):
            sample(frequency_ghz=-1.0)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(core_static_watts=-1.0)


class TestPowerSample:
    def test_aggregates(self):
        s = PowerSample(core_watts=10.0, llc_watts=2.0, dram_watts=3.0)
        assert s.package_watts == pytest.approx(12.0)
        assert s.total_watts == pytest.approx(15.0)
