"""Tests for machine configurations (Table IV)."""

import pytest

from repro.errors import UnknownMachineError
from repro.uarch.machine import (
    PAPER_MACHINE_NAMES,
    POWER_MACHINE_NAMES,
    SENSITIVITY_MACHINE_NAMES,
    all_machines,
    get_machine,
    paper_machines,
    power_study_machines,
)


class TestRegistry:
    def test_seven_paper_machines(self):
        assert len(PAPER_MACHINE_NAMES) == 7
        assert len(paper_machines()) == 7

    def test_three_power_machines(self):
        machines = power_study_machines()
        assert len(machines) == 3
        assert all(m.power is not None for m in machines)

    def test_power_machines_are_intel(self):
        for machine in power_study_machines():
            assert machine.isa == "x86"

    def test_unknown_machine_raises(self):
        with pytest.raises(UnknownMachineError):
            get_machine("cray-1")

    def test_lookup_round_trip(self):
        for name in PAPER_MACHINE_NAMES:
            assert get_machine(name).name == name

    def test_sensitivity_machines_subset_of_paper(self):
        assert set(SENSITIVITY_MACHINE_NAMES) <= set(PAPER_MACHINE_NAMES)
        assert len(SENSITIVITY_MACHINE_NAMES) == 4


class TestTableIVGeometry:
    """The machines must match Table IV's published geometry."""

    def test_three_isas_represented(self):
        isas = {m.isa for m in all_machines()}
        assert isas == {"x86", "sparc"}
        # two distinct x86 vendors stand in for the third ISA dimension
        assert any("opteron" in m.name for m in all_machines())

    def test_skylake(self):
        m = get_machine("skylake-i7-6700")
        assert m.l1d.size_bytes == 32 << 10
        assert m.last_level_cache.size_bytes == 8 << 20
        assert m.frequency_ghz == pytest.approx(3.4)

    def test_broadwell_llc_30mb(self):
        m = get_machine("xeon-e5-2650v4")
        assert m.last_level_cache.size_bytes == 30 << 20

    def test_ivybridge_llc_15mb(self):
        m = get_machine("xeon-e5-2430v2")
        assert m.last_level_cache.size_bytes == 15 << 20

    def test_e5405_has_no_l3(self):
        m = get_machine("xeon-e5405")
        assert m.l3 is None
        assert m.last_level_cache is m.l2
        assert m.l2.size_bytes == 6 << 20

    def test_sparc_v490(self):
        m = get_machine("sparc-iv-v490")
        assert m.isa == "sparc"
        assert m.l1d.size_bytes == 64 << 10
        assert m.l3.size_bytes == 32 << 20

    def test_sparc_t4_small_l1(self):
        m = get_machine("sparc-t4")
        assert m.l1d.size_bytes == 16 << 10
        assert m.l3.size_bytes == 4 << 20

    def test_opteron(self):
        m = get_machine("opteron-2435")
        assert m.l1d.size_bytes == 64 << 10
        assert m.l1d.associativity == 2
        assert m.l2.size_bytes == 512 << 10
        assert m.l3.size_bytes == 6 << 20

    def test_sparc_machines_use_8k_pages(self):
        for name in ("sparc-iv-v490", "sparc-t4"):
            assert get_machine(name).dtlb.page_bytes == 8192

    def test_sparc_path_factor_above_one(self):
        for name in ("sparc-iv-v490", "sparc-t4"):
            assert get_machine(name).isa_path_factor > 1.0

    def test_summary_mentions_description(self):
        for machine in all_machines():
            assert machine.description in machine.summary()

    def test_machine_diversity_in_llc(self):
        sizes = {m.last_level_cache.size_bytes for m in all_machines()}
        assert len(sizes) >= 5  # the point of the 7-machine methodology
