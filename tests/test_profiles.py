"""Unit tests for the statistical workload-profile primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.profiles import (
    BranchClass,
    BranchProfile,
    InstructionMix,
    ReuseComponent,
    ReuseProfile,
    blend_profiles,
)


def simple_profile(median=100.0, sigma=1.0, cold=0.0):
    return ReuseProfile.from_tuples([(1.0, median, sigma)], cold)


class TestReuseComponent:
    def test_mu_is_log_median(self):
        component = ReuseComponent(1.0, 100.0, 1.0)
        assert component.mu == pytest.approx(math.log(100.0))

    @pytest.mark.parametrize(
        "weight,median,sigma",
        [(-0.1, 10, 1), (1.0, 0.0, 1), (1.0, 10, 0.0), (1.0, -5, 1)],
    )
    def test_invalid_parameters_rejected(self, weight, median, sigma):
        with pytest.raises(ConfigurationError):
            ReuseComponent(weight, median, sigma)


class TestReuseProfile:
    def test_requires_components(self):
        with pytest.raises(ConfigurationError):
            ReuseProfile(components=())

    def test_cold_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            simple_profile(cold=1.0)
        with pytest.raises(ConfigurationError):
            simple_profile(cold=-0.1)

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            ReuseProfile.from_tuples([(0.0, 10.0, 1.0)])

    def test_normalized_weights_sum_to_warm_mass(self):
        profile = ReuseProfile.from_tuples(
            [(2.0, 10, 1), (6.0, 100, 1)], cold_fraction=0.2
        )
        weights = profile.normalized_weights
        assert weights.sum() == pytest.approx(0.8)
        assert weights[1] == pytest.approx(3 * weights[0])

    def test_miss_ratio_zero_capacity_is_one(self):
        assert simple_profile().miss_ratio(0.0) == 1.0

    def test_miss_ratio_monotone_in_capacity(self):
        profile = simple_profile(median=500.0, sigma=1.2, cold=0.01)
        capacities = [8, 64, 512, 4096, 32768]
        ratios = [profile.miss_ratio(c) for c in capacities]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_miss_ratio_floors_at_cold_fraction(self):
        profile = simple_profile(median=10.0, cold=0.05)
        assert profile.miss_ratio(1e9) == pytest.approx(0.05, abs=1e-6)

    def test_half_mass_at_median_fully_associative(self):
        profile = simple_profile(median=100.0)
        assert profile.miss_ratio(100.0) == pytest.approx(0.5, abs=0.02)

    def test_set_associative_missier_than_fully_associative(self):
        profile = simple_profile(median=400.0, sigma=0.8)
        fully = profile.miss_ratio(512)
        set_assoc = profile.miss_ratio(512, associativity=2)
        assert set_assoc >= fully

    def test_high_associativity_approaches_fully_associative(self):
        profile = simple_profile(median=300.0, sigma=0.8)
        fully = profile.miss_ratio(512)
        assoc = profile.miss_ratio(512, associativity=256)
        assert assoc == pytest.approx(fully, abs=0.05)

    def test_scaled_shifts_distances(self):
        profile = simple_profile(median=100.0)
        scaled = profile.scaled(4.0)
        assert scaled.components[0].median == pytest.approx(400.0)
        assert scaled.miss_ratio(512) > profile.miss_ratio(512)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            simple_profile().scaled(0.0)

    def test_with_cold_fraction(self):
        profile = simple_profile().with_cold_fraction(0.1)
        assert profile.cold_fraction == 0.1

    def test_sample_shapes_and_cold_inf(self):
        profile = simple_profile(cold=0.5)
        rng = np.random.default_rng(0)
        distances = profile.sample(rng, 4000)
        assert distances.shape == (4000,)
        cold_share = np.isinf(distances).mean()
        assert cold_share == pytest.approx(0.5, abs=0.05)

    def test_sample_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_profile().sample(np.random.default_rng(0), -1)

    def test_sampled_miss_ratio_matches_analytic(self):
        profile = ReuseProfile.from_tuples(
            [(0.7, 50, 1.0), (0.3, 5000, 1.2)], cold_fraction=0.02
        )
        rng = np.random.default_rng(7)
        distances = profile.sample(rng, 60_000)
        finite = np.isfinite(distances)
        empirical = 1.0 - (distances[finite] < 512).sum() / distances.size
        assert empirical == pytest.approx(profile.miss_ratio(512), abs=0.02)

    @given(
        median=st.floats(2.0, 1e5),
        sigma=st.floats(0.3, 2.0),
        capacity=st.integers(4, 1 << 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_miss_ratio_always_a_probability(self, median, sigma, capacity):
        profile = simple_profile(median=median, sigma=sigma, cold=0.01)
        ratio = profile.miss_ratio(capacity, associativity=8)
        assert 0.0 <= ratio <= 1.0

    @given(st.floats(1.1, 16.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_up_never_reduces_misses(self, factor):
        profile = simple_profile(median=200.0, sigma=1.0, cold=0.005)
        assert profile.scaled(factor).miss_ratio(512) >= profile.miss_ratio(512) - 1e-9


class TestBlendProfiles:
    def test_blend_is_between_parents(self):
        small = simple_profile(median=50.0)
        large = simple_profile(median=5000.0)
        blended = blend_profiles(small, large, second_share=0.5)
        ratio = blended.miss_ratio(512)
        assert small.miss_ratio(512) < ratio < large.miss_ratio(512)

    def test_blend_extremes(self):
        small = simple_profile(median=50.0)
        large = simple_profile(median=5000.0)
        assert blend_profiles(small, large, 0.0).miss_ratio(512) == pytest.approx(
            small.miss_ratio(512), abs=1e-9
        )

    def test_blend_share_validated(self):
        with pytest.raises(ConfigurationError):
            blend_profiles(simple_profile(), simple_profile(), 1.5)


class TestBranchClass:
    def test_static_mispredict_is_one_minus_bias(self):
        cls = BranchClass(1.0, 0.9, pattern=0.5)
        assert cls.mispredict_rate(0.0) == pytest.approx(0.1)

    def test_perfect_pattern_predictor_removes_all(self):
        cls = BranchClass(1.0, 0.9, pattern=1.0)
        assert cls.mispredict_rate(1.0) == pytest.approx(0.0)

    def test_bias_bounds(self):
        with pytest.raises(ConfigurationError):
            BranchClass(1.0, 0.4)
        with pytest.raises(ConfigurationError):
            BranchClass(1.0, 1.1)

    def test_strength_bounds(self):
        with pytest.raises(ConfigurationError):
            BranchClass(1.0, 0.9).mispredict_rate(1.5)

    @given(
        bias=st.floats(0.5, 1.0),
        pattern=st.floats(0.0, 1.0),
        strength=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_stronger_predictors_never_worse(self, bias, pattern, strength):
        cls = BranchClass(1.0, bias, pattern)
        assert cls.mispredict_rate(strength) <= cls.mispredict_rate(0.0) + 1e-12


def branch_profile(taken=0.6, sites=512):
    return BranchProfile.from_tuples(
        taken,
        [(0.6, 0.98, 0.9), (0.3, 0.88, 0.5), (0.1, 0.68, 0.2)],
        static_branches=sites,
    )


class TestBranchProfile:
    def test_requires_classes(self):
        with pytest.raises(ConfigurationError):
            BranchProfile(taken_fraction=0.5, classes=())

    def test_taken_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            branch_profile(taken=1.5)

    def test_mispredict_rate_decreases_with_strength(self):
        profile = branch_profile()
        weak = profile.mispredict_rate(0.2)
        strong = profile.mispredict_rate(0.95)
        assert strong < weak

    def test_aliasing_adds_mispredictions(self):
        profile = branch_profile(sites=4096)
        clean = profile.mispredict_rate(0.9, table_entries=0)
        aliased = profile.mispredict_rate(0.9, table_entries=1024)
        assert aliased > clean

    def test_bigger_tables_reduce_aliasing(self):
        profile = branch_profile(sites=4096)
        small = profile.mispredict_rate(0.9, table_entries=1024)
        big = profile.mispredict_rate(0.9, table_entries=65536)
        assert big < small

    def test_mispredict_rate_capped_at_half(self):
        profile = BranchProfile.from_tuples(0.5, [(1.0, 0.5, 0.0)], 10_000)
        assert profile.mispredict_rate(0.0, table_entries=16) <= 0.5

    def test_static_mispredict_rate_matches_zero_strength(self):
        profile = branch_profile()
        assert profile.static_mispredict_rate() == pytest.approx(
            profile.mispredict_rate(0.0, table_entries=0)
        )

    def test_sample_outcomes_taken_fraction(self):
        profile = branch_profile(taken=0.7, sites=256)
        rng = np.random.default_rng(3)
        _, taken = profile.sample_outcomes(rng, 50_000)
        assert taken.mean() == pytest.approx(0.7, abs=0.06)

    def test_sample_outcomes_sites_in_range(self):
        profile = branch_profile(sites=128)
        rng = np.random.default_rng(3)
        sites, _ = profile.sample_outcomes(rng, 5000)
        assert sites.min() >= 0
        assert sites.max() < 128

    def test_sample_minority_rate_tracks_bias(self):
        profile = BranchProfile.from_tuples(0.6, [(1.0, 0.9, 0.0)], 64)
        rng = np.random.default_rng(5)
        sites, taken = profile.sample_outcomes(rng, 40_000)
        # per-site majority agreement should be ~bias
        agreement = []
        for site in range(64):
            mask = sites == site
            if mask.sum() < 50:
                continue
            share = taken[mask].mean()
            agreement.append(max(share, 1 - share))
        assert np.mean(agreement) == pytest.approx(0.9, abs=0.05)


class TestInstructionMix:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            InstructionMix(load=0.5, store=0.4, branch=0.3, int_alu=0.2, fp=0.1)

    def test_from_percentages_computes_remainder(self):
        mix = InstructionMix.from_percentages(20, 10, 15, fp=5)
        assert mix.int_alu == pytest.approx(0.5)
        assert mix.memory == pytest.approx(0.3)
        assert mix.compute == pytest.approx(0.55)

    def test_from_percentages_rejects_over_100(self):
        with pytest.raises(ConfigurationError):
            InstructionMix.from_percentages(60, 30, 20)

    def test_as_dict_round_trip(self):
        mix = InstructionMix.from_percentages(20, 10, 15, fp=5, simd=0.02)
        data = mix.as_dict()
        assert data["load"] == pytest.approx(0.2)
        assert data["simd"] == pytest.approx(0.02)

    @given(
        load=st.floats(0, 40),
        store=st.floats(0, 25),
        branch=st.floats(0, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_from_percentages_always_sums_to_one(self, load, store, branch):
        mix = InstructionMix.from_percentages(load, store, branch)
        total = mix.load + mix.store + mix.branch + mix.int_alu + mix.fp + mix.other
        assert total == pytest.approx(1.0)
