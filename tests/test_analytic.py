"""Tests for the closed-form profiling engine."""

import numpy as np
import pytest

from repro.perf.analytic import profile_analytic
from repro.perf.counters import SIMILARITY_METRICS, Metric
from repro.uarch.machine import get_machine
from repro.workloads.spec import get_workload

SKYLAKE = get_machine("skylake-i7-6700")
SPARC_T4 = get_machine("sparc-t4")
E5405 = get_machine("xeon-e5405")


def report(workload="505.mcf_r", machine=SKYLAKE):
    return profile_analytic(get_workload(workload), machine)


class TestReportStructure:
    def test_all_similarity_metrics_present(self):
        r = report()
        for metric in SIMILARITY_METRICS:
            assert metric in r.metrics

    def test_power_present_only_with_power_model(self):
        with_power = report(machine=SKYLAKE)
        without = report(machine=SPARC_T4)
        assert with_power.power is not None
        assert without.power is None
        assert Metric.CORE_POWER_W not in without.metrics

    def test_deterministic(self):
        first, second = report(), report()
        assert first.metrics == second.metrics

    def test_cpi_equals_stack_total(self):
        r = report()
        assert r.metrics[Metric.CPI] == pytest.approx(r.cpi_stack.total)

    def test_instruction_count_scaled_by_isa(self):
        x86 = report("541.leela_r", SKYLAKE)
        sparc = report("541.leela_r", SPARC_T4)
        assert sparc.instructions > x86.instructions

    def test_getitem_and_get(self):
        r = report()
        assert r[Metric.CPI] == r.metrics[Metric.CPI]
        assert r.get(Metric.CORE_POWER_W, -1.0) != -1.0


class TestCacheMetrics:
    def test_miss_hierarchy_monotone(self):
        for workload in ("505.mcf_r", "507.cactubssn_r", "502.gcc_r"):
            r = report(workload)
            assert r[Metric.L1D_MPKI] >= r[Metric.L2D_MPKI] >= 0
            assert r[Metric.L1I_MPKI] >= r[Metric.L2I_MPKI] >= 0

    def test_no_l3_machine_reports_l2_misses_as_llc(self):
        r = report("505.mcf_r", E5405)
        # Without an L3, the last-level metric equals total L2 misses.
        assert r[Metric.L3_MPKI] == pytest.approx(
            r[Metric.L2D_MPKI] + r[Metric.L2I_MPKI]
        )

    def test_smaller_l1_misses_more(self):
        big_l1 = report("548.exchange2_r", get_machine("opteron-2435"))
        small_l1 = report("548.exchange2_r", SPARC_T4)
        assert small_l1[Metric.L1D_MPKI] > big_l1[Metric.L1D_MPKI]

    def test_bigger_llc_misses_less(self):
        small = report("520.omnetpp_r", SKYLAKE)          # 8 MB
        large = report("520.omnetpp_r", get_machine("xeon-e5-2650v4"))  # 30 MB
        assert large[Metric.L3_MPKI] <= small[Metric.L3_MPKI]

    def test_mcf_worst_data_cache_in_rate_int(self):
        from repro.workloads.spec import Suite, workloads_in_suite

        mpki = {
            s.name: report(s.name)[Metric.L1D_MPKI]
            for s in workloads_in_suite(Suite.SPEC2017_RATE_INT)
        }
        worst3 = sorted(mpki, key=mpki.get, reverse=True)[:3]
        assert "505.mcf_r" in worst3


class TestTlbMetrics:
    def test_walks_bounded_by_l1_misses(self):
        r = report()
        assert r[Metric.PAGE_WALKS_PMI] <= (
            r[Metric.L1_DTLB_MPMI] + r[Metric.L1_ITLB_MPMI] + 1e-9
        )

    def test_mcf_dtlb_worse_than_x264(self):
        assert (
            report("505.mcf_r")[Metric.L1_DTLB_MPMI]
            > 10 * report("525.x264_r")[Metric.L1_DTLB_MPMI]
        )

    def test_sparc_large_pages_reduce_dtlb_pressure_per_entry(self):
        # 8K pages double per-entry coverage: with the same entry count
        # the miss *ratio* should not explode relative to 4K pages.
        r = report("519.lbm_r", SPARC_T4)
        assert np.isfinite(r[Metric.L1_DTLB_MPMI])


class TestBranchMetrics:
    def test_leela_mispredicts_most_in_rate_int(self):
        from repro.workloads.spec import Suite, workloads_in_suite

        mpki = {
            s.name: report(s.name)[Metric.BRANCH_MPKI]
            for s in workloads_in_suite(Suite.SPEC2017_RATE_INT)
        }
        assert max(mpki, key=mpki.get) == "541.leela_r"

    def test_weak_predictor_machines_mispredict_more(self):
        strong = report("541.leela_r", SKYLAKE)
        weak = report("541.leela_r", E5405)
        assert weak[Metric.BRANCH_MPKI] > strong[Metric.BRANCH_MPKI]

    def test_taken_pki_reflects_mix(self):
        r = report("523.xalancbmk_r")
        spec = get_workload("523.xalancbmk_r")
        expected = spec.mix.branch * spec.branches.taken_fraction * 1000
        assert r[Metric.BRANCH_TAKEN_PKI] == pytest.approx(expected, rel=0.01)


class TestMixMetrics:
    def test_percentages_sum_to_100(self):
        r = report()
        total = (
            r[Metric.PCT_LOAD] + r[Metric.PCT_STORE] + r[Metric.PCT_BRANCH]
            + r[Metric.PCT_INT] + r[Metric.PCT_FP]
        )
        assert total == pytest.approx(100.0, abs=0.1)

    def test_sparc_dilutes_memory_percentages(self):
        x86 = report("505.mcf_r", SKYLAKE)
        sparc = report("505.mcf_r", SPARC_T4)
        assert sparc[Metric.PCT_LOAD] < x86[Metric.PCT_LOAD]
        assert sparc[Metric.PCT_INT] > x86[Metric.PCT_INT]

    def test_kernel_user_split(self):
        r = report()
        assert r[Metric.PCT_KERNEL] + r[Metric.PCT_USER] == pytest.approx(100.0)


class TestCpi:
    def test_calibrated_cpi_matches_table1(self):
        for workload in ("505.mcf_r", "541.leela_r", "525.x264_r", "649.fotonik3d_s"):
            spec = get_workload(workload)
            r = report(workload)
            assert r[Metric.CPI] == pytest.approx(spec.reference_cpi, rel=0.10)

    def test_memory_bound_cpi_higher_on_slow_memory_machine(self):
        fast = report("505.mcf_r", SKYLAKE)
        slow = report("505.mcf_r", E5405)
        assert slow[Metric.CPI] > fast[Metric.CPI]
