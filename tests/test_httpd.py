"""HTTP telemetry endpoint tests (repro.obs.httpd).

Every endpoint is exercised against a real server on an ephemeral
port: /metrics must emit parseable OpenMetrics with the negotiated
content type, /status must report the hub's progress/worker state,
/events must stream SSE frames (including the injected-stall event),
and the ledger source must serve a recorded run when no sweep is
live.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import httpd as obs_httpd
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import openmetrics


@pytest.fixture(autouse=True)
def _clean():
    obs_live.deactivate()
    obs.disable()
    obs.reset()
    obs_metrics.reset()
    yield
    obs_live.deactivate()
    obs.disable()
    obs.reset()
    obs_metrics.reset()


@pytest.fixture()
def server():
    live_server = obs_httpd.start_server(port=0)
    yield live_server
    live_server.close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


class TestEndpoints:
    def test_healthz(self, server):
        status, _headers, body = _get(server.url + "/healthz")
        assert status == 200
        assert body == "ok\n"

    def test_metrics_is_valid_openmetrics_with_content_type(self, server):
        obs_metrics.counter("trace_cache.spill").add(2)
        obs_metrics.gauge("trace_cache.spilled_bytes").set(4096)
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == obs_httpd.OPENMETRICS_CONTENT_TYPE
        families = openmetrics.parse_openmetrics(body)
        assert "repro_trace_cache_spill" in families
        assert families["repro_trace_cache_spilled_bytes"]["unit"] == "bytes"

    def test_status_without_hub(self, server):
        status, headers, body = _get(server.url + "/status")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["active"] is False
        assert payload["sweeps"] == []

    def test_status_reports_live_hub_state(self, server):
        hub = obs_live.activate(monitor=False)
        tracker = hub.sweep_started("profile-sweep", total=10)
        hub.sweep_advanced(tracker, 4)
        hub.chunk_submitted(0, 5)
        hub.ingest({"kind": "chunk.start", "pid": 33, "chunk": 0,
                    "pairs": 5, "rss_bytes": 12345})
        _status, _headers, body = _get(server.url + "/status")
        payload = json.loads(body)
        assert payload["active"] is True
        assert payload["sweeps"][0]["done"] == 4
        assert payload["inflight_chunks"] == {"0": 5}
        assert payload["workers"][0]["pid"] == 33
        assert payload["gauges"]["progress.completed"] == 4.0

    def test_index_and_404(self, server):
        status, _headers, body = _get(server.url + "/")
        assert status == 200 and "/metrics" in body
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_ephemeral_port_resolved(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"


class TestEvents:
    def test_sse_stream_replays_and_limits(self, server):
        hub = obs_live.activate(monitor=False)
        hub.publish("sweep.start", label="s", total=4)
        hub.publish("pair.done", pair="a@b")
        _status, headers, body = _get(server.url + "/events?limit=2")
        assert headers["Content-Type"].startswith("text/event-stream")
        frames = [f for f in body.split("\n\n") if f.startswith("id:")]
        assert len(frames) == 2
        assert "event: sweep.start" in frames[0]
        data = json.loads(
            next(
                line[len("data: "):]
                for line in frames[1].splitlines()
                if line.startswith("data: ")
            )
        )
        assert data["kind"] == "pair.done" and data["pair"] == "a@b"

    def test_sse_without_hub_closes_cleanly(self, server):
        _status, _headers, body = _get(server.url + "/events?limit=1")
        assert "no active sweep" in body

    def test_injected_stall_reaches_the_sse_stream(self, server):
        # The acceptance path: a worker goes silent, check_stalls flips
        # the gauge, and the stall event is visible to SSE clients.
        class ManualClock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = ManualClock()
        hub = obs_live.activate(
            stall_threshold_s=5.0, clock=clock, monitor=False
        )
        hub.ingest({"kind": "chunk.start", "pid": 55, "chunk": 3,
                    "pairs": 4})
        clock.now += 6.0
        assert hub.check_stalls() == [55]
        assert obs_metrics.gauge("executor.worker.stalled").value == 1.0
        _status, _headers, body = _get(server.url + "/events?limit=2")
        assert "event: worker.stalled" in body
        stall = next(
            json.loads(line[len("data: "):])
            for frame in body.split("\n\n")
            for line in frame.splitlines()
            if line.startswith("data: ")
            and '"worker.stalled"' in line
        )
        assert stall["pid"] == 55
        assert stall["silent_seconds"] >= 5.0
        assert stall["threshold_seconds"] == 5.0


class TestLedgerSource:
    def _document(self):
        return {
            "id": "0042-deadbeef",
            "seq": 42,
            "manifest": {
                "command": "dataset",
                "argv": ["dataset", "--suite", "rate-int"],
                "elapsed_s": 1.5,
                "metrics": {
                    "counters": {"profiler.cache.miss": 70},
                    "gauges": {"executor.pool.jobs": 4},
                    "histograms": {},
                },
                "stages": {},
            },
        }

    def test_ledger_metrics_and_status(self):
        metrics_fn, status_fn = obs_httpd.ledger_source(self._document())
        server = obs_httpd.start_server(
            port=0, metrics_fn=metrics_fn, status_fn=status_fn
        )
        try:
            _status, _headers, body = _get(server.url + "/metrics")
            families = openmetrics.parse_openmetrics(body)
            assert families["repro_profiler_cache_miss"]["samples"][0][2] \
                == 70.0
            _status, _headers, body = _get(server.url + "/status")
            payload = json.loads(body)
            assert payload["source"] == "ledger"
            assert payload["active"] is False
            assert payload["run"]["id"] == "0042-deadbeef"
            assert payload["run"]["command"] == "dataset"
        finally:
            server.close()


class TestLifecycle:
    def test_context_manager_closes(self):
        with obs_httpd.start_server(port=0) as live_server:
            status, _headers, _body = _get(live_server.url + "/healthz")
            assert status == 200
        with pytest.raises(OSError):
            _get(live_server.url + "/healthz")

    def test_two_servers_coexist(self):
        with obs_httpd.start_server(port=0) as first:
            with obs_httpd.start_server(port=0) as second:
                assert first.port != second.port
                assert _get(first.url + "/healthz")[0] == 200
                assert _get(second.url + "/healthz")[0] == 200
