"""Tests for the incremental statistics engine (stats/incremental.py).

The load-bearing guarantees:

* the exact fit *is* ``fit_pca`` (bit-comparable by construction);
* randomized append sequences stay within the documented tolerance of
  a batch refit while the drift bound holds, and the bound trips the
  exact-refactorization fallback before they could leave it;
* a forced refactorization restores bit-comparable results;
* seeded k-means and representative re-selection only touch what
  changed.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.parity import stable_seed
from repro import obs
from repro.errors import AnalysisError, ConfigurationError
from repro.stats.distance import (
    append_to_condensed,
    append_to_square,
    condensed_from_square,
    euclidean_distance_matrix,
    euclidean_row,
)
from repro.stats.incremental import (
    DRIFT_TOLERANCE,
    SCORE_TOLERANCE,
    IncrementalKMeans,
    IncrementalPca,
    StreamingMoments,
    reselect_representatives,
    resolve_analysis_mode,
)
from repro.stats.kmeans import kmeans
from repro.stats.pca import fit_pca


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.metrics.reset()
    yield
    obs.disable()
    obs.reset()
    obs.metrics.reset()


def _clustered_matrix(
    rng: np.random.Generator, n: int, d: int, centers: int = 4
) -> np.ndarray:
    """Rows drawn around a few well-separated centers (cluster shape)."""
    base = rng.normal(size=(centers, d)) * 3.0
    rows = [
        base[i % centers] + rng.normal(size=d) * 0.5 for i in range(n)
    ]
    return np.stack(rows)


# ----------------------------------------------------------------------
# mode resolution
# ----------------------------------------------------------------------


class TestResolveAnalysisMode:
    def test_defaults_to_incremental(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANALYSIS", raising=False)
        assert resolve_analysis_mode() == "incremental"

    def test_environment_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS", "batch")
        assert resolve_analysis_mode() == "batch"

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS", "batch")
        assert resolve_analysis_mode("incremental") == "incremental"

    def test_rejects_unknown_modes(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANALYSIS", raising=False)
        with pytest.raises(ConfigurationError, match="unknown analysis"):
            resolve_analysis_mode("sorta")
        monkeypatch.setenv("REPRO_ANALYSIS", "nope")
        with pytest.raises(ConfigurationError, match="unknown analysis"):
            resolve_analysis_mode()


# ----------------------------------------------------------------------
# streaming moments
# ----------------------------------------------------------------------


class TestStreamingMoments:
    def test_matches_numpy_population_moments(self):
        rng = np.random.default_rng(stable_seed("moments"))
        matrix = rng.normal(size=(50, 7)) * rng.uniform(0.1, 9.0, size=7)
        moments = StreamingMoments(7)
        for row in matrix:
            moments.update(row)
        assert moments.n == 50
        np.testing.assert_allclose(moments.mean, matrix.mean(axis=0))
        np.testing.assert_allclose(
            moments.variance, matrix.var(axis=0), atol=1e-12
        )

    def test_from_matrix_is_the_exact_resync(self):
        rng = np.random.default_rng(stable_seed("moments", "resync"))
        matrix = rng.normal(size=(30, 5))
        moments = StreamingMoments.from_matrix(matrix)
        assert moments.n == 30
        assert (moments.mean == matrix.mean(axis=0)).all()

    def test_zero_variance_features_standardize_like_batch(self):
        matrix = np.column_stack(
            [np.arange(10, dtype=float), np.full(10, 3.0)]
        )
        moments = StreamingMoments.from_matrix(matrix)
        assert moments.safe_std[1] == 1.0
        standardized = moments.standardize(matrix)
        assert (standardized[:, 1] == 0.0).all()

    def test_rejects_bad_shapes(self):
        with pytest.raises(AnalysisError):
            StreamingMoments(0)
        moments = StreamingMoments(3)
        with pytest.raises(AnalysisError, match="expected a row"):
            moments.update(np.zeros(4))


# ----------------------------------------------------------------------
# incremental PCA
# ----------------------------------------------------------------------


class TestIncrementalPca:
    def test_fit_is_fit_pca_bit_for_bit(self):
        rng = np.random.default_rng(stable_seed("ipca", "fit"))
        matrix = _clustered_matrix(rng, 40, 12)
        labels = tuple(f"f{i}" for i in range(12))
        engine = IncrementalPca(feature_labels=labels)
        result = engine.fit(matrix)
        batch = fit_pca(matrix, labels)
        assert (result.eigenvalues == batch.eigenvalues).all()
        assert (result.loadings == batch.loadings).all()
        assert (result.scores == batch.scores).all()
        assert result.kaiser_components == batch.kaiser_components
        assert engine.drift == 0.0

    def test_append_before_fit_raises(self):
        engine = IncrementalPca()
        with pytest.raises(AnalysisError, match="append before fit"):
            engine.append(np.zeros(3))

    def test_append_rejects_wrong_width(self):
        engine = IncrementalPca()
        engine.fit(np.random.default_rng(0).normal(size=(10, 4)))
        with pytest.raises(AnalysisError, match="expected a row"):
            engine.append(np.zeros(5))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(AnalysisError, match="tolerance"):
            IncrementalPca(tolerance=-1.0)

    @pytest.mark.parametrize("case", range(5))
    def test_randomized_appends_stay_within_documented_tolerance(self, case):
        """Satellite: randomized append sequences vs the batch fit.

        Retained eigenvalues, loadings and scores must agree with a
        fresh ``fit_pca`` within SCORE_TOLERANCE as long as the engine
        refactorizes whenever its drift bound trips.
        """
        rng = np.random.default_rng(stable_seed("ipca", "random", case))
        n0 = int(rng.integers(80, 200))
        d = int(rng.integers(10, 50))
        appends = int(rng.integers(10, 25))
        matrix = _clustered_matrix(rng, n0, d, centers=int(rng.integers(3, 6)))
        engine = IncrementalPca()
        engine.fit(matrix)
        rows = [row for row in matrix]
        for _ in range(appends):
            row = _clustered_matrix(rng, 1, d)[0]
            rows.append(row)
            engine.append(row)
            assert engine.drift >= 0.0
            if engine.needs_refactorization:
                engine.refactorize(np.stack(rows))
                assert engine.drift == 0.0
            else:
                assert engine.drift <= engine.tolerance
        full = np.stack(rows)
        batch = fit_pca(full)
        approx = engine.result(full)
        k = batch.kaiser_components
        assert approx.kaiser_components == k
        assert np.abs(
            approx.eigenvalues[:k] - batch.eigenvalues[:k]
        ).max() < SCORE_TOLERANCE
        # Loadings/scores are sign-fixed per component; compare
        # magnitudes so a legal reflection cannot fail the test.
        assert np.abs(
            np.abs(approx.loadings[:k]) - np.abs(batch.loadings[:k])
        ).max() < SCORE_TOLERANCE
        assert np.abs(
            np.abs(approx.retained_scores()) - np.abs(batch.retained_scores())
        ).max() < SCORE_TOLERANCE

    def test_fallback_triggers_and_restores_bit_comparable_results(self):
        """Satellite: the exactness fallback under heavy perturbation.

        With a small population every append is a large correlation
        perturbation, so the measured drift must exceed the tolerance
        (triggering ``needs_refactorization``), and refactorizing must
        restore results bit-comparable with ``fit_pca``.
        """
        rng = np.random.default_rng(stable_seed("ipca", "fallback"))
        matrix = _clustered_matrix(rng, 12, 10)
        engine = IncrementalPca()
        engine.fit(matrix)
        rows = [row for row in matrix]
        tripped = False
        for _ in range(8):
            row = rng.normal(size=10) * 5.0  # far from the fitted blobs
            rows.append(row)
            engine.append(row)
            if engine.needs_refactorization:
                tripped = True
                break
        assert tripped, "drift bound never tripped under heavy perturbation"
        full = np.stack(rows)
        exact = engine.refactorize(full)
        batch = fit_pca(full)
        assert (exact.eigenvalues == batch.eigenvalues).all()
        assert (exact.loadings == batch.loadings).all()
        assert (exact.scores == batch.scores).all()
        assert exact.kaiser_components == batch.kaiser_components
        assert engine.drift == 0.0
        assert engine.result(full) is exact  # cached verbatim

    def test_refactorization_counter_and_gauge(self):
        obs.enable()
        obs.metrics.reset()
        rng = np.random.default_rng(stable_seed("ipca", "obs"))
        matrix = _clustered_matrix(rng, 20, 6)
        engine = IncrementalPca()
        engine.fit(matrix)
        engine.append(rng.normal(size=6))
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["analysis.refactorizations"] == 1.0
        assert snapshot["counters"]["analysis.rows_appended"] == 1.0
        assert "analysis.drift" in snapshot["gauges"]

    def test_transform_matches_result_scores(self):
        rng = np.random.default_rng(stable_seed("ipca", "transform"))
        matrix = _clustered_matrix(rng, 30, 8)
        engine = IncrementalPca()
        result = engine.fit(matrix)
        coords = engine.transform(matrix[:3], result.kaiser_components)
        np.testing.assert_allclose(
            coords, result.retained_scores()[:3], atol=1e-9
        )

    def test_result_requires_the_full_matrix(self):
        rng = np.random.default_rng(stable_seed("ipca", "shape"))
        matrix = _clustered_matrix(rng, 20, 5)
        engine = IncrementalPca()
        engine.fit(matrix)
        engine.append(rng.normal(size=5))
        with pytest.raises(AnalysisError, match="full"):
            engine.result(matrix)  # one row short now


# ----------------------------------------------------------------------
# incremental k-means
# ----------------------------------------------------------------------


class TestIncrementalKMeans:
    def test_fit_is_the_batch_fit(self):
        rng = np.random.default_rng(stable_seed("ikm", "fit"))
        points = _clustered_matrix(rng, 30, 3, centers=3)
        engine = IncrementalKMeans(3, seed=2017)
        result = engine.fit(points)
        batch = kmeans(points, 3, seed=2017)
        assert (result.assignment == batch.assignment).all()
        assert result.inertia == batch.inertia

    def test_update_without_fit_falls_back_to_batch(self):
        rng = np.random.default_rng(stable_seed("ikm", "cold"))
        points = _clustered_matrix(rng, 24, 3, centers=3)
        engine = IncrementalKMeans(3)
        result, changed = engine.update(points)
        assert changed == frozenset(range(result.k))

    def test_appended_point_joins_a_cluster_and_flags_it(self):
        rng = np.random.default_rng(stable_seed("ikm", "append"))
        points = _clustered_matrix(rng, 30, 2, centers=3)
        engine = IncrementalKMeans(3, seed=2017)
        seeded = engine.fit(points)
        # Drop the new point on top of cluster 0's centroid: only that
        # cluster's membership can change.
        new_point = seeded.centroids[0]
        grown = np.vstack([points, new_point])
        result, changed = engine.update(grown)
        assert result.assignment.shape == (31,)
        assert int(result.assignment[30]) in changed
        stable = set(range(result.k)) - set(changed)
        for cluster in stable:
            before = set(np.nonzero(seeded.assignment == cluster)[0])
            after = set(np.nonzero(result.assignment == cluster)[0])
            assert before == after

    def test_no_change_reports_no_changed_clusters(self):
        rng = np.random.default_rng(stable_seed("ikm", "stable"))
        points = _clustered_matrix(rng, 30, 2, centers=3)
        engine = IncrementalKMeans(3, seed=2017)
        engine.fit(points)
        _, changed = engine.update(points)
        assert changed == frozenset()

    def test_shrinking_population_rejected(self):
        rng = np.random.default_rng(stable_seed("ikm", "shrink"))
        points = _clustered_matrix(rng, 20, 2)
        engine = IncrementalKMeans(3)
        engine.fit(points)
        with pytest.raises(AnalysisError, match="append-only"):
            engine.update(points[:10])

    def test_dimension_change_reprojects_the_seed(self):
        rng = np.random.default_rng(stable_seed("ikm", "dims"))
        points = _clustered_matrix(rng, 24, 4, centers=3)
        engine = IncrementalKMeans(3, seed=2017)
        engine.fit(points)
        wider = np.hstack([points, rng.normal(size=(24, 1)) * 0.01])
        result, _ = engine.update(wider)
        assert result.centroids.shape == (3, 5)

    def test_invalid_k_rejected(self):
        with pytest.raises(AnalysisError):
            IncrementalKMeans(0)


# ----------------------------------------------------------------------
# representative re-selection
# ----------------------------------------------------------------------


class TestReselectRepresentatives:
    def test_full_rescan_matches_batch_representatives(self):
        rng = np.random.default_rng(stable_seed("reps", "full"))
        points = _clustered_matrix(rng, 25, 3, centers=3)
        labels = [f"w{i:02d}" for i in range(25)]
        result = kmeans(points, 3, seed=2017)
        chosen, _ = reselect_representatives(points, result, labels)
        assert chosen == result.representatives(points, labels)

    def test_unchanged_clusters_reuse_the_cache(self):
        rng = np.random.default_rng(stable_seed("reps", "cache"))
        points = _clustered_matrix(rng, 25, 3, centers=3)
        labels = [f"w{i:02d}" for i in range(25)]
        result = kmeans(points, 3, seed=2017)
        _, cache = reselect_representatives(points, result, labels)
        obs.enable()
        obs.metrics.reset()
        poisoned = dict(cache)
        victim = next(iter(poisoned))
        poisoned[victim] = "sentinel"
        chosen, refreshed = reselect_representatives(
            points, result, labels,
            previous=poisoned, changed=frozenset(),
        )
        # Nothing changed, so the sentinel must have been trusted (the
        # cached path) and no cluster re-scored.
        assert "sentinel" in chosen
        assert refreshed[victim] == "sentinel"
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("analysis.clusters_rescored", 0.0) == 0.0

    def test_changed_clusters_are_rescored(self):
        rng = np.random.default_rng(stable_seed("reps", "changed"))
        points = _clustered_matrix(rng, 25, 3, centers=3)
        labels = [f"w{i:02d}" for i in range(25)]
        result = kmeans(points, 3, seed=2017)
        _, cache = reselect_representatives(points, result, labels)
        victim = next(iter(cache))
        poisoned = {**cache, victim: "sentinel"}
        chosen, refreshed = reselect_representatives(
            points, result, labels,
            previous=poisoned, changed=frozenset({victim}),
        )
        assert refreshed[victim] == cache[victim]  # re-scored, not trusted
        assert "sentinel" not in chosen

    def test_label_count_mismatch_rejected(self):
        points = np.zeros((4, 2))
        result = kmeans(points + np.arange(4)[:, None], 2, seed=1)
        with pytest.raises(AnalysisError, match="labels"):
            reselect_representatives(points, result, ["a", "b"])


# ----------------------------------------------------------------------
# incremental distance rows (satellite)
# ----------------------------------------------------------------------


class TestDistanceAppend:
    @pytest.mark.parametrize("n,d", [(1, 4), (5, 3), (40, 9)])
    def test_row_matches_the_batch_matrix_slice(self, n, d):
        rng = np.random.default_rng(stable_seed("dist", n, d))
        points = rng.normal(size=(n, d))
        new = rng.normal(size=d)
        full = euclidean_distance_matrix(np.vstack([points, new]))
        row = euclidean_row(points, new)
        np.testing.assert_allclose(row, full[n, :n], rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("n,d", [(1, 4), (5, 3), (40, 9)])
    def test_square_and_condensed_growth_match_recompute(self, n, d):
        rng = np.random.default_rng(stable_seed("dist", "grow", n, d))
        points = rng.normal(size=(n, d))
        new = rng.normal(size=d)
        square = euclidean_distance_matrix(points)
        row = euclidean_row(points, new)
        grown = append_to_square(square, row)
        full = euclidean_distance_matrix(np.vstack([points, new]))
        np.testing.assert_allclose(grown, full, rtol=1e-12, atol=1e-12)
        assert grown[n, n] == 0.0
        condensed = append_to_condensed(
            condensed_from_square(square), n, row
        )
        np.testing.assert_allclose(
            condensed, condensed_from_square(full), rtol=1e-12, atol=1e-12
        )

    def test_shape_errors(self):
        points = np.zeros((3, 2))
        with pytest.raises(AnalysisError):
            euclidean_row(points, np.zeros(3))
        with pytest.raises(AnalysisError):
            append_to_square(np.zeros((3, 3)), np.zeros(2))
        with pytest.raises(AnalysisError):
            append_to_square(np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(AnalysisError):
            append_to_condensed(np.zeros(3), 3, np.zeros(2))
        with pytest.raises(AnalysisError):
            append_to_condensed(np.zeros(4), 3, np.zeros(3))


# ----------------------------------------------------------------------
# the documented constants
# ----------------------------------------------------------------------


def test_tolerances_are_sane():
    assert 0.0 < DRIFT_TOLERANCE < SCORE_TOLERANCE < 1.0
