"""Tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.profiles import ReuseProfile
from repro.workloads.spec import get_workload
from repro.workloads.synthesis import (
    SyntheticTrace,
    synthesize_address_stream,
    synthesize_trace,
)


def profile(median=100.0, sigma=1.0, cold=0.0):
    return ReuseProfile.from_tuples([(1.0, median, sigma)], cold)


class TestAddressStream:
    def test_length(self):
        rng = np.random.default_rng(0)
        addresses = synthesize_address_stream(profile(), 500, rng)
        assert addresses.shape == (500,)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_address_stream(profile(), -1, np.random.default_rng(0))

    def test_line_alignment(self):
        rng = np.random.default_rng(0)
        addresses = synthesize_address_stream(profile(), 300, rng, line_bytes=64)
        assert (addresses % 64 == 0).all()

    def test_stack_distance_distribution_reproduced(self):
        """An exact-LRU simulation of the stream must see roughly the
        profile's miss ratio at the matching capacity."""
        target = profile(median=60.0, sigma=0.8)
        rng = np.random.default_rng(1)
        addresses = synthesize_address_stream(target, 30_000, rng)
        from repro.uarch.cache import Cache, CacheConfig

        cache = Cache(CacheConfig(256 * 64, 64, 256))  # fully assoc, 256 lines
        warm = 5000
        for i, address in enumerate(addresses):
            if i == warm:
                cache.stats.reset()
            cache.access(int(address))
        assert cache.stats.miss_ratio == pytest.approx(
            target.miss_ratio(256), abs=0.04
        )

    def test_page_packing_controls_page_working_set(self):
        rng = np.random.default_rng(2)
        dense = synthesize_address_stream(
            profile(median=600, sigma=1.0), 20_000, rng, lines_per_page=32
        )
        rng = np.random.default_rng(2)
        sparse = synthesize_address_stream(
            profile(median=600, sigma=1.0), 20_000, rng, lines_per_page=1
        )
        pages_dense = len(set(int(a) >> 12 for a in dense))
        pages_sparse = len(set(int(a) >> 12 for a in sparse))
        assert pages_sparse > 5 * pages_dense

    def test_base_address_respected(self):
        rng = np.random.default_rng(0)
        addresses = synthesize_address_stream(
            profile(), 100, rng, base_address=1 << 40
        )
        assert (addresses >= (1 << 40)).all()

    def test_set_index_uniformity(self):
        """Line addresses must spread over cache sets even with sparse
        page packing (regression test for the set-aliasing bug)."""
        rng = np.random.default_rng(3)
        addresses = synthesize_address_stream(
            profile(median=800, sigma=1.0), 30_000, rng, lines_per_page=2
        )
        sets = (addresses >> 6) % 64
        counts = np.bincount(sets.astype(int), minlength=64)
        assert counts.min() > 0.2 * counts.mean()


class TestSynthesizeTrace:
    def test_stream_lengths_follow_mix(self):
        spec = get_workload("505.mcf_r")
        trace = synthesize_trace(spec, 50_000, seed=1)
        assert trace.instructions == 50_000
        expected_mem = 50_000 * spec.mix.memory
        assert trace.data_refs == pytest.approx(expected_mem, rel=0.01)
        assert trace.branches == pytest.approx(50_000 * spec.mix.branch, rel=0.01)

    def test_store_share(self):
        spec = get_workload("505.mcf_r")
        trace = synthesize_trace(spec, 80_000, seed=2)
        store_share = trace.data_is_store.mean()
        assert store_share == pytest.approx(
            spec.mix.store / spec.mix.memory, abs=0.03
        )

    def test_taken_fraction(self):
        spec = get_workload("502.gcc_r")
        trace = synthesize_trace(spec, 80_000, seed=3)
        assert trace.branch_taken.mean() == pytest.approx(
            spec.branches.taken_fraction, abs=0.06
        )

    def test_code_and_data_disjoint(self):
        trace = synthesize_trace(get_workload("541.leela_r"), 20_000, seed=0)
        assert trace.ifetch_addresses.min() >= (1 << 40)
        assert trace.data_addresses.max() < (1 << 40)

    def test_deterministic_per_seed(self):
        spec = get_workload("541.leela_r")
        first = synthesize_trace(spec, 10_000, seed=7)
        second = synthesize_trace(spec, 10_000, seed=7)
        assert np.array_equal(first.data_addresses, second.data_addresses)
        assert np.array_equal(first.branch_taken, second.branch_taken)

    def test_different_seeds_differ(self):
        spec = get_workload("541.leela_r")
        first = synthesize_trace(spec, 10_000, seed=7)
        second = synthesize_trace(spec, 10_000, seed=8)
        assert not np.array_equal(first.data_addresses, second.data_addresses)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ConfigurationError):
            synthesize_trace(get_workload("541.leela_r"), 0)
