"""Unit tests for the top-down CPI-stack model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.uarch.pipeline import CpiStack, MemoryLatencies, compute_cpi_stack

LAT = MemoryLatencies(l2=12, l3=40, memory=200, page_walk=30)


def stack(**overrides):
    kwargs = dict(
        width=4.0,
        ilp=4.0,
        mlp=2.0,
        latencies=LAT,
        mispredict_penalty=15.0,
        l1d_mpki=10.0,
        l2d_mpki=4.0,
        l3_mpki=1.0,
        l1i_mpki=1.0,
        l2i_mpki=0.1,
        branch_mpki=3.0,
        dtlb_walks_pmi=100.0,
        itlb_walks_pmi=10.0,
    )
    kwargs.update(overrides)
    return compute_cpi_stack(**kwargs)


class TestMemoryLatencies:
    def test_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            MemoryLatencies(l2=50, l3=40, memory=200)
        with pytest.raises(ConfigurationError):
            MemoryLatencies(l2=12, l3=40, memory=30)


class TestCpiStack:
    def test_total_is_sum_of_components(self):
        s = stack()
        total = (
            s.base + s.dependency + s.frontend + s.bad_speculation
            + s.backend_l2 + s.backend_l3 + s.backend_memory + s.backend_tlb
        )
        assert s.total == pytest.approx(total)

    def test_ideal_machine_cpi_is_inverse_width(self):
        s = stack(
            l1d_mpki=0, l2d_mpki=0, l3_mpki=0, l1i_mpki=0, l2i_mpki=0,
            branch_mpki=0, dtlb_walks_pmi=0, itlb_walks_pmi=0,
        )
        assert s.total == pytest.approx(0.25)

    def test_low_ilp_adds_dependency_stalls(self):
        bound = stack(ilp=1.0)
        free = stack(ilp=4.0)
        assert bound.dependency > 0
        assert free.dependency == pytest.approx(0.0)
        assert bound.total > free.total

    def test_sub_unity_ilp_allowed(self):
        s = stack(ilp=0.8)
        assert s.base + s.dependency == pytest.approx(1.25)

    def test_higher_mlp_hides_memory_latency(self):
        serial = stack(mlp=1.0)
        parallel = stack(mlp=4.0)
        assert parallel.backend < serial.backend
        assert parallel.bad_speculation == serial.bad_speculation

    def test_branch_misses_cost_penalty(self):
        s = stack(branch_mpki=10.0)
        assert s.bad_speculation == pytest.approx(10.0 / 1000 * 15.0)

    def test_memory_attribution_by_level(self):
        s = stack(l1d_mpki=10, l2d_mpki=4, l3_mpki=1, mlp=1.0)
        assert s.backend_l2 == pytest.approx(6 / 1000 * 12)
        assert s.backend_l3 == pytest.approx(3 / 1000 * 40)
        assert s.backend_memory == pytest.approx(1 / 1000 * 200)

    def test_mpki_monotonicity_clamped(self):
        # l2d > l1d is physically impossible; the model clamps.
        s = stack(l1d_mpki=2.0, l2d_mpki=5.0, l3_mpki=1.0)
        assert s.backend_l2 >= 0.0
        assert s.backend_l3 >= 0.0

    def test_fractions_sum_to_one(self):
        fractions = stack().fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_paper_categories(self):
        s = stack()
        assert s.frontend_bound == pytest.approx(s.frontend + s.bad_speculation)
        assert s.other == pytest.approx(s.dependency)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            stack(width=0.5)
        with pytest.raises(ConfigurationError):
            stack(ilp=0.2)
        with pytest.raises(ConfigurationError):
            stack(mlp=0.5)

    @given(
        l1d=st.floats(0, 100),
        l2d=st.floats(0, 50),
        l3=st.floats(0, 20),
        branch=st.floats(0, 20),
        mlp=st.floats(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_cpi_positive_and_bounded(self, l1d, l2d, l3, branch, mlp):
        s = stack(l1d_mpki=l1d, l2d_mpki=l2d, l3_mpki=l3, branch_mpki=branch, mlp=mlp)
        assert s.total >= 0.25
        assert s.total < 100

    @given(st.floats(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_more_l3_misses_never_faster(self, l3_mpki):
        lo = stack(l3_mpki=0.0, l2d_mpki=max(0.0, l3_mpki))
        hi = stack(l3_mpki=l3_mpki, l2d_mpki=max(4.0, l3_mpki))
        assert hi.total >= lo.total - 1e-9
