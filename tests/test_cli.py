"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestList:
    def test_list_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out
        assert "cas-WA" in out

    def test_list_suite(self, capsys):
        assert main(["list", "--suite", "rate-int"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out
        assert "cas-WA" not in out

    def test_list_machines(self, capsys):
        assert main(["list", "--machines"]) == 0
        out = capsys.readouterr().out
        assert "Intel Core i7-6700" in out
        assert "SPARC T4" in out


class TestProfile:
    def test_text_output(self, capsys):
        assert main(["profile", "505.mcf_r"]) == 0
        out = capsys.readouterr().out
        assert "l1d_mpki" in out
        assert "CPI stack" in out

    def test_json_output(self, capsys):
        assert main(["profile", "541.leela_r", "sparc-t4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "541.leela_r"
        assert data["machine"] == "sparc-t4"

    def test_unknown_workload_is_an_error(self, capsys):
        assert main(["profile", "999.ghost"]) == 1
        assert "error" in capsys.readouterr().err


class TestSubset:
    def test_subset(self, capsys):
        assert main(["subset", "rate-int", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out
        assert "reduction" in out

    def test_subset_with_validation(self, capsys):
        assert main(["subset", "speed-fp", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "mean error" in out


class TestAnalyses:
    def test_dendrogram(self, capsys):
        assert main(["dendrogram", "speed-int"]) == 0
        out = capsys.readouterr().out
        assert "most distinct: 605.mcf_s" in out

    def test_inputsets(self, capsys):
        assert main(["inputsets", "--category", "int"]) == 0
        out = capsys.readouterr().out
        assert "502.gcc_r" in out

    def test_rate_speed(self, capsys):
        assert main(["rate-speed"]) == 0
        out = capsys.readouterr().out
        assert "638.imagick_s" in out

    def test_balance(self, capsys):
        assert main(["balance"]) == 0
        out = capsys.readouterr().out
        assert "429.mcf" in out

    def test_power(self, capsys):
        assert main(["power"]) == 0
        assert "core power spread" in capsys.readouterr().out

    def test_casestudies(self, capsys):
        assert main(["casestudies"]) == 0
        out = capsys.readouterr().out
        assert "cas-WA" in out and "NOT covered" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "branch_prediction"]) == 0
        assert "high:" in capsys.readouterr().out


class TestExport:
    def test_export_csv(self, capsys, tmp_path):
        out_file = tmp_path / "matrix.csv"
        assert main(["export", "--suite", "rate-int", "--out", str(out_file)]) == 0
        assert out_file.exists()
        header = out_file.read_text().splitlines()[0]
        assert header.startswith("workload,")
