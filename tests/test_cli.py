"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestList:
    def test_list_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out
        assert "cas-WA" in out

    def test_list_suite(self, capsys):
        assert main(["list", "--suite", "rate-int"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out
        assert "cas-WA" not in out

    def test_list_machines(self, capsys):
        assert main(["list", "--machines"]) == 0
        out = capsys.readouterr().out
        assert "Intel Core i7-6700" in out
        assert "SPARC T4" in out


class TestProfile:
    def test_text_output(self, capsys):
        assert main(["profile", "505.mcf_r"]) == 0
        out = capsys.readouterr().out
        assert "l1d_mpki" in out
        assert "CPI stack" in out

    def test_json_output(self, capsys):
        assert main(["profile", "541.leela_r", "sparc-t4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "541.leela_r"
        assert data["machine"] == "sparc-t4"

    def test_unknown_workload_is_an_error(self, capsys):
        assert main(["profile", "999.ghost"]) == 1
        assert "error" in capsys.readouterr().err


class TestSubset:
    def test_subset(self, capsys):
        assert main(["subset", "rate-int", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out
        assert "reduction" in out

    def test_subset_with_validation(self, capsys):
        assert main(["subset", "speed-fp", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "mean error" in out


class TestAnalyses:
    def test_dendrogram(self, capsys):
        assert main(["dendrogram", "speed-int"]) == 0
        out = capsys.readouterr().out
        assert "most distinct: 605.mcf_s" in out

    def test_inputsets(self, capsys):
        assert main(["inputsets", "--category", "int"]) == 0
        out = capsys.readouterr().out
        assert "502.gcc_r" in out

    def test_rate_speed(self, capsys):
        assert main(["rate-speed"]) == 0
        out = capsys.readouterr().out
        assert "638.imagick_s" in out

    def test_balance(self, capsys):
        assert main(["balance"]) == 0
        out = capsys.readouterr().out
        assert "429.mcf" in out

    def test_power(self, capsys):
        assert main(["power"]) == 0
        assert "core power spread" in capsys.readouterr().out

    def test_casestudies(self, capsys):
        assert main(["casestudies"]) == 0
        out = capsys.readouterr().out
        assert "cas-WA" in out and "NOT covered" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "branch_prediction"]) == 0
        assert "high:" in capsys.readouterr().out


class TestExport:
    def test_export_csv(self, capsys, tmp_path):
        out_file = tmp_path / "matrix.csv"
        assert main(["export", "--suite", "rate-int", "--out", str(out_file)]) == 0
        assert out_file.exists()
        header = out_file.read_text().splitlines()[0]
        assert header.startswith("workload,")


class TestDatasetObservability:
    """PR 2's ``dataset`` subcommand under the obs flags."""

    def test_dataset_obs_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["dataset", "--suite", "rate-int", "--obs", "json"]) == 0
        out = capsys.readouterr().out
        json_lines = [
            line for line in out.splitlines() if line.startswith("{")
        ]
        parsed = [json.loads(line) for line in json_lines]
        types = {p["type"] for p in parsed}
        assert types == {"span", "metrics"}
        root = next(p for p in parsed if p["type"] == "span")
        assert root["name"] == "repro.dataset"
        names = {c["name"] for c in root["children"]}
        assert "dataset.build_matrix" in names

    def test_dataset_trace_out(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        trace_path = tmp_path / "dataset-trace.json"
        assert main(
            ["dataset", "--suite", "rate-int",
             "--trace-out", str(trace_path)]
        ) == 0
        document = json.loads(trace_path.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert "repro.dataset" in names
        assert "profile" in names

    def test_dataset_obs_records_history(self, capsys, tmp_path, monkeypatch):
        from repro.obs import history

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["dataset", "--suite", "rate-int",
                     "--obs", "summary"]) == 0
        runs = history.list_runs()
        assert len(runs) == 1
        assert runs[0].command == "dataset"

    def test_dataset_metrics_out(self, capsys, tmp_path, monkeypatch):
        from repro.obs import openmetrics

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        metrics_path = tmp_path / "metrics.txt"
        assert main(
            ["dataset", "--suite", "rate-int",
             "--metrics-out", str(metrics_path)]
        ) == 0
        families = openmetrics.parse_openmetrics(metrics_path.read_text())
        assert "repro_profiler_cache_miss" in families
        assert any(f.startswith("repro_stage_wall") for f in families)


class TestObsVerbs:
    """``repro obs {history,diff,check}`` and ``obs-report --json``."""

    def _observe(self, monkeypatch, tmp_path, times=1):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        for _ in range(times):
            assert main(["profile", "505.mcf_r", "--obs", "summary"]) == 0

    def test_history_lists_runs(self, capsys, tmp_path, monkeypatch):
        self._observe(monkeypatch, tmp_path, times=2)
        capsys.readouterr()
        assert main(["obs", "history"]) == 0
        out = capsys.readouterr().out
        assert out.count("profile") == 2
        assert "000000-" in out and "000001-" in out

    def test_history_json_and_prune(self, capsys, tmp_path, monkeypatch):
        self._observe(monkeypatch, tmp_path, times=3)
        capsys.readouterr()
        assert main(["obs", "history", "--prune", "2", "--json"]) == 0
        out = capsys.readouterr().out
        runs = json.loads(out[out.index("["):])
        assert len(runs) == 2
        assert runs[0]["seq"] == 1

    def test_history_empty_is_not_an_error(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["obs", "history"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_diff_two_runs(self, capsys, tmp_path, monkeypatch):
        self._observe(monkeypatch, tmp_path, times=2)
        capsys.readouterr()
        assert main(["obs", "diff", "-2", "-1"]) == 0
        out = capsys.readouterr().out
        assert "diff 000000-" in out
        assert "(total)" in out

    def test_check_passes_on_self_baseline(self, capsys, tmp_path,
                                           monkeypatch):
        self._observe(monkeypatch, tmp_path, times=2)
        capsys.readouterr()
        assert main(["obs", "check"]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_check_single_run_is_vacuously_ok(self, capsys, tmp_path,
                                              monkeypatch):
        self._observe(monkeypatch, tmp_path, times=1)
        capsys.readouterr()
        assert main(["obs", "check"]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_check_empty_history_is_an_error(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["obs", "check"]) == 1
        assert "error" in capsys.readouterr().err

    def test_check_flags_injected_slowdown(self, capsys, tmp_path,
                                           monkeypatch):
        from repro.obs import history

        self._observe(monkeypatch, tmp_path, times=2)
        # Inject a synthetic 10x slowdown as a third recorded run.
        manifest = history.load_run("latest")["manifest"]
        for entry in manifest["stages"].values():
            entry["wall_s"] *= 10
        manifest["elapsed_s"] *= 10
        history.record_run(manifest)
        capsys.readouterr()
        assert main(["obs", "check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "profile" in out  # the regressed stage is named

    def test_check_json_output(self, capsys, tmp_path, monkeypatch):
        self._observe(monkeypatch, tmp_path, times=2)
        capsys.readouterr()
        assert main(["obs", "check", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["run"].startswith("000001-")

    def test_check_ignores_other_run_keys(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["profile", "505.mcf_r", "--obs", "summary"]) == 0
        assert main(["profile", "541.leela_r", "--obs", "summary"]) == 0
        capsys.readouterr()
        # The leela run has no prior leela runs: vacuously ok, the
        # mcf run is not a comparable baseline.
        assert main(["obs", "check"]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_profile_flag_records_profile_in_manifest(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["dataset", "--suite", "rate-int",
                     "--profile", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "digest:" in out
        assert "--- obs: profiled" in out
        from repro.obs import history

        run = history.load_run("latest")
        profile = run["manifest"]["profile"]
        assert profile["mode"] == "cpu"
        assert profile["sample_count"] == sum(profile["samples"].values())

    def test_obs_flame_renders_from_ledger(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["dataset", "--suite", "rate-int",
                     "--profile", "all"]) == 0
        capsys.readouterr()
        out_html = tmp_path / "flame.html"
        out_collapsed = tmp_path / "stacks.txt"
        assert main(["obs", "flame", "--out", str(out_html),
                     "--collapsed", str(out_collapsed)]) == 0
        message = capsys.readouterr().out
        assert "wrote flamegraph" in message
        html = out_html.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "samples" in html
        collapsed = out_collapsed.read_text()
        assert collapsed  # one "stack count" line per distinct stack
        for line in collapsed.splitlines():
            assert line.rsplit(" ", 1)[1].isdigit()

    def test_obs_flame_without_profile_data_errors(self, capsys, tmp_path,
                                                   monkeypatch):
        self._observe(monkeypatch, tmp_path, times=1)
        capsys.readouterr()
        assert main(["obs", "flame"]) == 1
        assert "--profile" in capsys.readouterr().err

    def test_obs_top_lists_spans_and_frames(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["dataset", "--suite", "rate-int", "--obs", "summary",
                     "--profile", "all"]) == 0
        capsys.readouterr()
        assert main(["obs", "top", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "top 3 span series" in out
        assert "dataset.build_matrix" in out
        assert "top 3 frames" in out
        assert "self" in out

    def test_obs_report_json(self, capsys, tmp_path, monkeypatch):
        self._observe(monkeypatch, tmp_path, times=1)
        capsys.readouterr()
        assert main(["obs-report", "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["command"] == "profile"
        assert "stages" in manifest and "metrics" in manifest

    def test_manifest_has_span_duration_percentiles(self, capsys, tmp_path,
                                                    monkeypatch):
        self._observe(monkeypatch, tmp_path, times=1)
        capsys.readouterr()
        assert main(["obs-report", "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        histograms = manifest["metrics"]["histograms"]
        # Instruments zeroed by a run-boundary reset stay registered, so
        # only populated histograms carry percentile estimates.
        span_hists = [
            name for name, stats in histograms.items()
            if name.startswith("span.") and stats["count"]
        ]
        assert span_hists
        for name in span_hists:
            assert histograms[name]["p50"] is not None
            assert histograms[name]["p99"] is not None


class TestServe:
    """``--serve-port`` on sweeps and the ``repro obs serve`` verb."""

    def _get(self, url):
        import urllib.request

        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode()

    def test_serve_port_serves_a_running_sweep(self, capsys, tmp_path,
                                               monkeypatch):
        import json as json_module
        import threading
        import urllib.request

        from repro.obs import openmetrics

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        scraped = {}

        def scrape(port, tries=500):
            import time

            url = f"http://127.0.0.1:{port}"
            for _ in range(tries):
                try:
                    with urllib.request.urlopen(
                        url + "/status", timeout=1
                    ) as response:
                        status = json_module.loads(response.read())
                    if status["gauges"].get("progress.completed", 0) >= 1:
                        with urllib.request.urlopen(
                            url + "/metrics", timeout=1
                        ) as response:
                            scraped["content_type"] = response.headers[
                                "Content-Type"
                            ]
                            scraped["metrics"] = response.read().decode()
                        scraped["status"] = status
                        return
                except Exception:
                    pass
                time.sleep(0.01)

        port = 18123
        scraper = threading.Thread(target=scrape, args=(port,))
        scraper.start()
        assert main(
            ["dataset", "--suite", "rate-int", "--jobs", "2",
             "--serve-port", str(port), "--no-disk-cache"]
        ) == 0
        scraper.join()
        assert "metrics" in scraped, "scrape never caught the sweep"
        assert scraped["content_type"].startswith(
            "application/openmetrics-text"
        )
        families = openmetrics.parse_openmetrics(scraped["metrics"])
        assert "repro_progress_completed" in families
        assert any(f.startswith("repro_executor_") for f in families)
        assert scraped["status"]["sweeps"], "no in-flight sweep reported"
        # The endpoint must be gone once the command returns.
        from repro.obs import live as obs_live

        assert obs_live.active_hub() is None

    def test_serve_port_does_not_change_the_digest(self, capsys, tmp_path,
                                                   monkeypatch):
        import re

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["dataset", "--suite", "rate-int",
                     "--no-disk-cache"]) == 0
        control = re.search(r"digest:\s+([0-9a-f]{64})",
                            capsys.readouterr().out).group(1)
        assert main(["dataset", "--suite", "rate-int", "--no-disk-cache",
                     "--serve-port", "0"]) == 0
        served = re.search(r"digest:\s+([0-9a-f]{64})",
                           capsys.readouterr().out).group(1)
        assert served == control

    def test_obs_serve_serves_the_latest_ledger_run(self, capsys, tmp_path,
                                                    monkeypatch):
        import json as json_module
        import threading

        from repro.obs import openmetrics

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["profile", "505.mcf_r", "--obs", "summary"]) == 0
        capsys.readouterr()
        port = 18124
        scraped = {}

        def scrape(tries=500):
            import time

            url = f"http://127.0.0.1:{port}"
            for _ in range(tries):
                try:
                    scraped["metrics"] = self._get(url + "/metrics")[1]
                    scraped["status"] = json_module.loads(
                        self._get(url + "/status")[1]
                    )
                    return
                except Exception:
                    pass
                time.sleep(0.01)

        scraper = threading.Thread(target=scrape)
        scraper.start()
        assert main(["obs", "serve", "--port", str(port),
                     "--for-seconds", "3"]) == 0
        scraper.join()
        assert "metrics" in scraped
        families = openmetrics.parse_openmetrics(scraped["metrics"])
        assert "repro_run_info" in families
        assert scraped["status"]["source"] == "ledger"
        assert scraped["status"]["run"]["command"] == "profile"

    def test_obs_serve_empty_ledger_falls_back_to_live(self, capsys,
                                                       tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert main(["obs", "serve", "--port", "0", "--for-seconds", "0",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "live"
        assert payload["run"] is None


class TestAnalyze:
    def test_init_append_status_flow(self, capsys, tmp_path):
        directory = str(tmp_path / "store")
        assert main(
            ["analyze", "init", directory, "--suite", "rate-int", "--json"]
        ) == 0
        init = json.loads(capsys.readouterr().out)
        assert init["rows"] >= 2
        assert init["drift"] == 0.0
        assert init["representatives"]

        assert main(
            ["analyze", "append", directory, "619.lbm_s", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["label"] == "619.lbm_s"
        assert report["index"] == init["rows"]
        assert len(report["coordinates"]) >= 1
        impact = report["subset_impact"]
        assert isinstance(impact["subset_changed"], bool)
        assert impact["representatives"]

        assert main(["analyze", "status", directory, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["rows"] == init["rows"] + 1
        assert status["rows_folded"] == status["rows"]
        assert status["representatives"]

    def test_human_readable_append_mentions_the_subset(
        self, capsys, tmp_path
    ):
        directory = str(tmp_path / "store")
        assert main(["analyze", "init", directory]) == 0
        capsys.readouterr()
        assert main(["analyze", "append", directory, "619.lbm_s"]) == 0
        out = capsys.readouterr().out
        assert "PC coordinates" in out
        assert "cluster" in out
        assert "subset:" in out
        assert "drift:" in out

    def test_append_duplicate_workload_is_an_error(self, capsys, tmp_path):
        directory = str(tmp_path / "store")
        assert main(["analyze", "init", directory]) == 0
        capsys.readouterr()
        assert main(["analyze", "append", directory, "505.mcf_r"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_status_of_missing_store_is_an_error(self, capsys, tmp_path):
        assert main(["analyze", "status", str(tmp_path / "none")]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalysisModeFlag:
    def test_subset_output_is_identical_in_both_modes(self, capsys):
        assert main(
            ["subset", "rate-int", "-k", "3", "--analysis", "batch"]
        ) == 0
        batch = capsys.readouterr().out
        assert main(
            ["subset", "rate-int", "-k", "3", "--analysis", "incremental"]
        ) == 0
        assert capsys.readouterr().out == batch

    def test_environment_mode_is_honoured(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS", "batch")
        assert main(["subset", "rate-int", "-k", "3"]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_invalid_environment_mode_is_an_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS", "nope")
        assert main(["subset", "rate-int", "-k", "3"]) == 1
        assert "unknown analysis" in capsys.readouterr().err

    def test_invalid_flag_value_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["subset", "rate-int", "--analysis", "sorta"]
            )
