"""Tests for the CPI calibration against Table I."""

import numpy as np
import pytest

from repro.workloads.calibration import (
    REFERENCE_MACHINE,
    calibrate_spec,
    calibration_error,
)
from repro.workloads.spec import Suite, all_workloads, get_workload, workloads_in_suite


class TestCalibration:
    def test_all_cpu2017_within_twenty_percent(self):
        for spec in workloads_in_suite(
            Suite.SPEC2017_RATE_INT,
            Suite.SPEC2017_SPEED_INT,
            Suite.SPEC2017_RATE_FP,
            Suite.SPEC2017_SPEED_FP,
        ):
            cpi, error = calibration_error(spec)
            assert error < 0.20, f"{spec.name}: model {cpi:.2f} vs {spec.reference_cpi}"

    def test_mean_error_small(self):
        errors = [
            calibration_error(spec)[1]
            for spec in all_workloads()
            if spec.reference_cpi is not None
        ]
        assert np.mean(errors) < 0.02

    def test_no_reference_cpi_left_unchanged(self):
        spec = get_workload("cas-WA")
        assert spec.reference_cpi is None
        assert calibration_error(spec) is None
        assert calibrate_spec(spec) is spec

    def test_calibration_idempotent_shape(self):
        """Re-calibrating a calibrated spec keeps the CPI on target."""
        spec = get_workload("505.mcf_r")
        again = calibrate_spec(spec)
        _, error = calibration_error(again)
        assert error < 0.05

    def test_calibration_only_touches_pipeline_parameters(self):
        spec = get_workload("505.mcf_r")
        recalibrated = calibrate_spec(spec)
        assert recalibrated.mix == spec.mix
        assert recalibrated.data_reuse == spec.data_reuse
        assert recalibrated.branches == spec.branches

    def test_reference_machine_exists(self):
        from repro.uarch.machine import get_machine

        assert get_machine(REFERENCE_MACHINE).name == REFERENCE_MACHINE

    def test_table1_cpi_rank_correlation(self):
        """Beyond absolute errors: the CPI *ordering* of Table I holds."""
        from scipy.stats import spearmanr

        specs = [
            s
            for s in workloads_in_suite(
                Suite.SPEC2017_RATE_INT, Suite.SPEC2017_RATE_FP
            )
            if s.reference_cpi is not None
        ]
        published = [s.reference_cpi for s in specs]
        modelled = [calibration_error(s)[0] for s in specs]
        rho, _ = spearmanr(published, modelled)
        assert rho > 0.95
