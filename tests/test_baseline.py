"""Tests for robust baselines and regression verdicts (repro.obs.baseline)."""

from __future__ import annotations

import json

import pytest

from repro.obs import baseline


def make_manifest(profile_wall=0.1, pca_wall=0.05, misses=70.0,
                  elapsed=None):
    elapsed = elapsed if elapsed is not None else profile_wall + pca_wall
    return {
        "command": "subset",
        "argv": ["subset", "rate-int"],
        "elapsed_s": elapsed,
        "cpu_s": elapsed / 2,
        "stages": {
            "similarity.profile": {
                "calls": 1, "wall_s": profile_wall, "cpu_s": 0.01
            },
            "similarity.pca": {"calls": 1, "wall_s": pca_wall, "cpu_s": 0.01},
        },
        "metrics": {
            "counters": {"profiler.cache.miss": misses},
            "gauges": {"executor.pool.jobs": 4.0},
            "histograms": {},
        },
    }


class TestRobustStats:
    def test_median_odd_even(self):
        assert baseline.median([3.0, 1.0, 2.0]) == 2.0
        assert baseline.median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            baseline.median([])

    def test_mad(self):
        assert baseline.mad([1.0, 2.0, 3.0]) == 1.0
        assert baseline.mad([5.0, 5.0, 5.0]) == 0.0

    def test_mad_robust_to_outlier(self):
        values = [1.0] * 9 + [100.0]
        assert baseline.mad(values) == 0.0


class TestBuildBaseline:
    def test_medians_over_runs(self):
        runs = [make_manifest(profile_wall=w) for w in (0.1, 0.2, 0.3)]
        base = baseline.build_baseline(runs)
        assert base.n_runs == 3
        assert base.stages["similarity.profile"].median == 0.2
        assert base.stages[baseline.TOTAL_STAGE].median == pytest.approx(
            0.25
        )
        assert base.counters["profiler.cache.miss"].median == 70.0
        assert base.counters["executor.pool.jobs"].median == 4.0

    def test_window_uses_most_recent(self):
        runs = [make_manifest(profile_wall=w) for w in (9.0, 0.1, 0.1, 0.1)]
        base = baseline.build_baseline(runs, window=3)
        assert base.n_runs == 3
        assert base.stages["similarity.profile"].median == 0.1
        assert base.stages["similarity.profile"].mad == 0.0

    def test_serializable(self):
        base = baseline.build_baseline([make_manifest()])
        json.dumps(base.to_dict())


class TestCompare:
    def _baseline(self, n=5, profile_wall=0.1):
        return baseline.build_baseline(
            [make_manifest(profile_wall=profile_wall) for _ in range(n)]
        )

    def test_identical_run_is_ok(self):
        base = self._baseline()
        verdict = baseline.compare(make_manifest(), base)
        assert verdict.ok
        assert verdict.regressions == []
        assert all(f.status == "ok" for f in verdict.findings)

    def test_small_jitter_is_ok(self):
        base = self._baseline(profile_wall=0.1)
        verdict = baseline.compare(make_manifest(profile_wall=0.11), base)
        assert verdict.ok

    def test_10x_slowdown_regresses_and_names_stage(self):
        base = self._baseline(profile_wall=0.1)
        verdict = baseline.compare(make_manifest(profile_wall=1.0), base)
        assert not verdict.ok
        regressed = {f.name for f in verdict.regressions}
        assert "similarity.profile" in regressed
        finding = next(
            f for f in verdict.regressions
            if f.name == "similarity.profile"
        )
        assert finding.kind == "stage"
        assert finding.z > baseline.DEFAULT_Z_THRESHOLD
        assert "median" in finding.reason

    def test_large_speedup_is_improvement_not_failure(self):
        base = self._baseline(profile_wall=1.0)
        verdict = baseline.compare(make_manifest(profile_wall=0.01), base)
        assert verdict.ok
        assert any(
            f.name == "similarity.profile" for f in verdict.improvements
        )

    def test_counter_jump_regresses(self):
        base = self._baseline()
        verdict = baseline.compare(make_manifest(misses=700.0), base)
        assert not verdict.ok
        assert any(
            f.name == "profiler.cache.miss" and f.kind == "counter"
            for f in verdict.regressions
        )

    def test_profiler_resource_series_use_counter_tolerance(self):
        # The profiler's resource gauges (peak RSS, sample counts) ride
        # the same counter tolerance as every other manifest series:
        # run-to-run jitter is absorbed by the MAD-scaled band, gross
        # drift regresses.
        def manifest(rss):
            m = make_manifest()
            m["metrics"]["gauges"]["profiler.peak_rss_bytes"] = rss
            m["metrics"]["counters"]["profiler.samples"] = 1000.0
            return m

        base = baseline.build_baseline(
            [manifest(100e6 + i * 1e6) for i in range(5)]
        )
        ok = baseline.compare(manifest(103e6), base)
        finding = next(
            f for f in ok.findings if f.name == "profiler.peak_rss_bytes"
        )
        assert finding.kind == "counter" and finding.status == "ok"
        bad = baseline.compare(manifest(300e6), base)
        assert any(
            f.name == "profiler.peak_rss_bytes"
            for f in bad.regressions
        )

    def test_counter_within_one_count_is_ok(self):
        base = self._baseline()
        verdict = baseline.compare(make_manifest(misses=71.0), base)
        counter = next(
            f for f in verdict.findings
            if f.name == "profiler.cache.miss"
        )
        assert counter.status == "ok"

    def test_millisecond_stage_needs_absolute_floor(self):
        # A 0.5 ms stage jittering to 2 ms must not flag: it is inside
        # 3 x the absolute floor.
        base = baseline.build_baseline(
            [make_manifest(profile_wall=0.0005) for _ in range(3)]
        )
        verdict = baseline.compare(make_manifest(profile_wall=0.002), base)
        stage = next(
            f for f in verdict.findings
            if f.name == "similarity.profile"
        )
        assert stage.status == "ok"

    def test_new_and_missing_series_do_not_fail(self):
        base = self._baseline()
        candidate = make_manifest()
        candidate["stages"]["brand.new"] = {
            "calls": 1, "wall_s": 0.5, "cpu_s": 0.1
        }
        del candidate["stages"]["similarity.pca"]
        verdict = baseline.compare(candidate, base)
        statuses = {f.name: f.status for f in verdict.findings}
        assert statuses["brand.new"] == "new"
        assert statuses["similarity.pca"] == "missing"
        assert verdict.ok

    def test_z_threshold_is_configurable(self):
        base = self._baseline(profile_wall=0.1)
        candidate = make_manifest(profile_wall=0.16)
        strict = baseline.compare(candidate, base, z_threshold=1.0)
        lax = baseline.compare(candidate, base, z_threshold=10.0)
        assert not strict.ok
        assert lax.ok

    def test_render_names_regressions(self):
        base = self._baseline(profile_wall=0.1)
        verdict = baseline.compare(make_manifest(profile_wall=1.0), base)
        text = verdict.render()
        assert "REGRESSED" in text
        assert "similarity.profile" in text

    def test_to_dict_serializable(self):
        base = self._baseline()
        verdict = baseline.compare(make_manifest(), base)
        data = verdict.to_dict()
        assert data["ok"] is True
        json.dumps(data)


class TestDiff:
    def test_diff_reports_ratios(self):
        first = make_manifest(profile_wall=0.1)
        second = make_manifest(profile_wall=0.2)
        findings = baseline.diff_manifests(first, second)
        by_name = {f.name: f for f in findings}
        stage = by_name["similarity.profile"]
        assert stage.status == "regressed"
        assert "x2.00" in stage.reason

    def test_diff_flags_new_and_missing(self):
        first = make_manifest()
        second = make_manifest()
        del second["stages"]["similarity.pca"]
        second["metrics"]["counters"]["fresh.counter"] = 5.0
        by_name = {
            f.name: f for f in baseline.diff_manifests(first, second)
        }
        assert by_name["similarity.pca"].status == "missing"
        assert by_name["fresh.counter"].status == "new"

    def test_diff_equal_is_ok(self):
        findings = baseline.diff_manifests(make_manifest(), make_manifest())
        assert all(f.status == "ok" for f in findings)
