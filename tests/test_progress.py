"""Hook and heartbeat semantics of repro.obs.progress.

The heartbeat contract the sweep drivers rely on:

* an installed hook receives heartbeats even while tracing is disabled
  (that is how benchmarks and tests observe progress deterministically);
* ``ticks=N`` coalesces a long loop into ~N bounded emissions;
* ``close()`` emits the final line exactly once — never zero times,
  never twice, no matter how the loop ended;
* ``done`` can never exceed ``total`` (overshooting ``advance(amount)``
  is clamped) and ``total == 0`` counts freely without dividing;
* the default stderr heartbeat carries rate and ETA.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.progress import Progress, _format_heartbeat, set_heartbeat_hook


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.metrics.reset()
    set_heartbeat_hook(None)
    yield
    obs.disable()
    obs.reset()
    obs.metrics.reset()
    set_heartbeat_hook(None)


class TestHookSemantics:
    def test_hook_fires_while_tracing_disabled(self):
        assert not obs.enabled()
        beats = []
        set_heartbeat_hook(
            lambda label, done, total: beats.append((label, done, total))
        )
        ticker = Progress("sweep", total=4, ticks=2)
        for _ in range(4):
            ticker.advance()
        ticker.close()
        assert beats
        assert beats[-1] == ("sweep", 4, 4)

    def test_tick_coalescing_bounds_emissions(self):
        beats = []
        set_heartbeat_hook(lambda label, done, total: beats.append(done))
        ticker = Progress("sweep", total=1000, ticks=10)
        for _ in range(1000):
            ticker.advance()
        ticker.close()
        assert len(beats) <= 11
        assert beats[-1] == 1000

    def test_close_emits_final_line_when_loop_ends_between_ticks(self):
        beats = []
        set_heartbeat_hook(lambda label, done, total: beats.append(done))
        ticker = Progress("sweep", total=1000, ticks=10)
        # 950 lands between the 900 and 1000 ticks; only close() can
        # report it.
        for _ in range(950):
            ticker.advance()
        ticker.close()
        assert beats[-1] == 950

    def test_close_never_duplicates_the_final_line(self):
        beats = []
        set_heartbeat_hook(lambda label, done, total: beats.append(done))
        ticker = Progress("sweep", total=10, ticks=10)
        for _ in range(10):
            ticker.advance()  # the last advance emits done == total
        ticker.close()
        ticker.close()  # idempotent
        assert beats.count(10) == 1

    def test_close_emits_exactly_once_for_empty_loop(self):
        beats = []
        set_heartbeat_hook(
            lambda label, done, total: beats.append((done, total))
        )
        ticker = Progress("empty", total=5)
        ticker.close()
        ticker.close()
        assert beats == [(0, 5)]


class TestClampingAndZeroTotal:
    def test_overshooting_advance_is_clamped(self):
        beats = []
        set_heartbeat_hook(lambda label, done, total: beats.append(done))
        ticker = Progress("batch", total=10, ticks=10)
        ticker.advance(7)
        ticker.advance(7)  # 14 > total: must clamp, not report 14
        ticker.close()
        assert ticker.done == 10
        assert all(done <= 10 for done in beats)
        assert beats[-1] == 10

    def test_zero_total_counts_freely(self):
        beats = []
        set_heartbeat_hook(
            lambda label, done, total: beats.append((done, total))
        )
        ticker = Progress("unknown", total=0)
        for _ in range(3):
            ticker.advance()
        ticker.close()
        assert ticker.done == 3
        assert beats[-1] == (3, 0)

    def test_clamp_applies_while_fully_disabled_too(self):
        ticker = Progress("batch", total=5)
        ticker.advance(9)
        assert ticker.done == 5


class TestStderrHeartbeat:
    def test_format_carries_rate_and_eta(self):
        line = _format_heartbeat("profile-sweep", 280, 560, 6.65)
        assert line.startswith("[profile-sweep] 280/560 50%")
        assert "/s" in line
        assert "eta" in line

    def test_format_omits_eta_when_done(self):
        line = _format_heartbeat("sweep", 560, 560, 10.0)
        assert "eta" not in line
        assert "56.0/s" in line

    def test_format_zero_total_renders_without_dividing(self):
        assert _format_heartbeat("loop", 3, 0, 0.0) == "[loop] 3 done"

    def test_stderr_heartbeat_under_tracing(self, capsys):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 1.0
            return clock_value[0]

        obs.enable()
        ticker = Progress("sweep", total=4, ticks=2, clock=clock)
        for _ in range(4):
            ticker.advance()
        ticker.close()
        err = capsys.readouterr().err
        assert "[sweep] 4/4 100%" in err
        assert "/s" in err

    def test_silent_when_disabled_and_unhooked(self, capsys):
        ticker = Progress("loop", total=50)
        for _ in range(50):
            ticker.advance()
        ticker.close()
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
