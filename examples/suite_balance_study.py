#!/usr/bin/env python3
"""Scenario: is CPU2017 balanced enough to stand in for *your* domain?

Reproduces the paper's Section V balance study end to end: CPU2017 vs
CPU2006 coverage, the power spectrum, and the emerging-workload case
studies (EDA, NoSQL database, graph analytics) — then prints the
verdict per domain.
"""

from repro.core.balance import analyze_balance
from repro.core.casestudies import analyze_case_studies
from repro.core.power_analysis import analyze_power_spectrum
from repro.reporting import Table


def main() -> None:
    # --- CPU2017 vs CPU2006 -------------------------------------------------
    balance = analyze_balance()
    print("== CPU2017 vs CPU2006 (Fig 11) ==")
    for plane in (balance.plane_12, balance.plane_34):
        print(f"  PC{plane.axes[0]}-PC{plane.axes[1]}: "
              f"area ratio 2017/2006 = {plane.expansion:.2f}, "
              f"{plane.fraction_2017_outside_2006:.0%} of CPU2017 outside "
              f"the CPU2006 hull")
    print(f"  removed CPU2006 benchmarks no longer covered: "
          f"{', '.join(balance.uncovered_removed)}")

    # --- power spectrum -------------------------------------------------------
    power = analyze_power_spectrum()
    print("\n== Power spectrum (Fig 12) ==")
    print(f"  power-space area ratio 2017/2006: {power.expansion:.2f}")
    print(f"  core-power spread: 2017 {power.core_power_spread_2017:.2f} W "
          f"vs 2006 {power.core_power_spread_2006:.2f} W")

    # --- emerging workloads ----------------------------------------------------
    cases = analyze_case_studies()
    print("\n== Emerging workloads (Fig 13) ==")
    table = Table(["workload", "nearest CPU2017", "distance ratio", "covered"])
    for name, (nearest, _d) in sorted(cases.nearest_cpu2017.items()):
        table.add_row([
            name, nearest, cases.coverage_ratio(name),
            "yes" if cases.is_covered(name) else "NO",
        ])
    print(table.render())

    print("\nVerdict:")
    print("  EDA           -> covered (runs like mcf); no EDA benchmark needed")
    print("  graph (cc)    -> covered (runs like leela/deepsjeng/xz)")
    print("  graph (pr)    -> NOT covered: random-access D-TLB behaviour")
    print("  NoSQL (C*)    -> NOT covered: scale-out I-cache/I-TLB behaviour")


if __name__ == "__main__":
    main()
