#!/usr/bin/env python3
"""Scenario: you can only afford to simulate k benchmarks — which ones?

The paper's motivating use case: detailed simulators run at ~1 MIPS, so
the multi-trillion-instruction CPU2017 suite is unaffordable.  Given a
simulation budget (in benchmarks), this script selects the subset,
reports how much simulation time it saves, and quantifies the accuracy
you give up — the full error/cost trade-off curve of the paper's
Section IV-B discussion.
"""

import argparse

from repro import Suite, analyze_similarity, select_subset, workloads_in_suite
from repro.core.validation import validate_subset
from repro.reporting import Table

SUITES = {
    "speed-int": Suite.SPEC2017_SPEED_INT,
    "rate-int": Suite.SPEC2017_RATE_INT,
    "speed-fp": Suite.SPEC2017_SPEED_FP,
    "rate-fp": Suite.SPEC2017_RATE_FP,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES), default="rate-fp")
    parser.add_argument("--budget", type=int, default=3,
                        help="number of benchmarks you can simulate")
    args = parser.parse_args()
    suite = SUITES[args.suite]

    names = [spec.name for spec in workloads_in_suite(suite)]
    similarity = analyze_similarity(names)
    print(f"== {suite.value}: {len(names)} benchmarks, "
          f"{similarity.n_components} PCs covering "
          f"{similarity.variance_covered:.0%} of variance ==\n")
    print(similarity.dendrogram().text)

    table = Table(
        ["k", "subset", "sim-time reduction", "mean error", "max error"],
        title="\nBudget trade-off",
    )
    for k in range(1, len(names) + 1):
        subset = select_subset(similarity, k)
        weights = [len(c) for c in subset.clusters]
        validation = validate_subset(suite, subset.subset, weights=weights)
        marker = " <- your budget" if k == args.budget else ""
        table.add_row([
            k,
            ", ".join(sorted(subset.subset)) if k <= 4 else f"({k} benchmarks)",
            f"{subset.time_reduction:.1f}x{marker}",
            f"{validation.mean_error:.1%}",
            f"{validation.max_error:.1%}",
        ])
    print(table.render())

    chosen = select_subset(similarity, args.budget)
    print(f"\nSimulate: {', '.join(chosen.subset)}")
    print(f"Each representative stands for its cluster; weight suite scores "
          f"by cluster size: "
          f"{ {r: len(c) for r, c in zip(chosen.subset, chosen.clusters)} }")


if __name__ == "__main__":
    main()
