#!/usr/bin/env python3
"""Scenario: evaluate a design trade-off using only the subset.

The paper's end goal: an architect wants to know whether to spend area
on a bigger LLC, a bigger L2, a stronger branch predictor, a bigger
second-level TLB, or faster memory — but cannot simulate the whole
suite.  This script runs the design space on the Table V subset only,
and then (because our substrate is fast) checks the answer against the
full sub-suite.
"""

from repro import Suite, workloads_in_suite
from repro.core.designspace import standard_design_space, subset_design_fidelity
from repro.core.subsetting import subset_suite
from repro.reporting import Table


def main() -> None:
    suite = Suite.SPEC2017_RATE_INT
    names = [spec.name for spec in workloads_in_suite(suite)]
    subset = subset_suite(suite, k=3)
    print(f"sub-suite: {suite.value}")
    print(f"subset: {', '.join(subset.subset)} "
          f"({subset.time_reduction:.1f}x less simulation)\n")

    variants = standard_design_space("skylake-i7-6700")
    fidelity = subset_design_fidelity(
        names, list(subset.subset), variants=variants
    )

    table = Table(
        ["design option", "subset speedup", "full-suite speedup"],
        title="Design-space geomean speedups over the baseline",
        precision=4,
    )
    for option in fidelity.full.ranking():
        table.add_row([
            option,
            fidelity.subset.speedups[option],
            fidelity.full.speedups[option],
        ])
    print(table.render())

    print(f"\nsubset picks : {fidelity.subset.best()}")
    print(f"full suite   : {fidelity.full.best()}")
    print(f"rank corr    : {fidelity.rank_correlation:.2f}")
    print(f"max gap      : {fidelity.max_speedup_gap:.3f}")
    verdict = "faithful" if fidelity.faithful else "check mid-ranking choices"
    print(f"verdict      : {verdict}")


if __name__ == "__main__":
    main()
