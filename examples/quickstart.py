#!/usr/bin/env python3
"""Quickstart: profile benchmarks, inspect CPI stacks, pick a subset.

Walks the three core capabilities in ~40 lines of API use:

1. profile a workload model on a machine model (the paper's
   perf-counter measurement),
2. decompose its execution time into a CPI stack (Figure 1),
3. select a representative 3-benchmark subset of a sub-suite
   (Table V) and check what it costs in estimation error (Figure 5).
"""

from repro import Metric, Suite, profile, subset_suite
from repro.core.validation import validate_subset


def main() -> None:
    # --- 1. profile one benchmark on one machine --------------------------
    report = profile("505.mcf_r", "skylake-i7-6700")
    print("== 505.mcf_r on the Skylake i7-6700 model ==")
    for metric in (
        Metric.L1D_MPKI, Metric.L2D_MPKI, Metric.L3_MPKI,
        Metric.L1_DTLB_MPMI, Metric.BRANCH_MPKI, Metric.CPI,
    ):
        print(f"  {metric.value:15s} {report.metrics[metric]:10.2f}")

    # --- 2. where do the cycles go? ----------------------------------------
    stack = report.cpi_stack
    print("\n== CPI stack (top-down) ==")
    for component, value in stack.as_dict().items():
        share = value / stack.total
        print(f"  {component:16s} {value:6.3f}  {'#' * int(40 * share)}")

    # --- 3. subset a sub-suite ---------------------------------------------
    result = subset_suite(Suite.SPEC2017_SPEED_INT, k=3)
    print("\n== SPECspeed INT, 3-benchmark subset ==")
    print(f"  subset          : {', '.join(result.subset)}")
    print(f"  time reduction  : {result.time_reduction:.1f}x")
    print(f"  cut at distance : {result.threshold:.1f}")
    for representative, cluster in zip(result.subset, result.clusters):
        print(f"  {representative:18s} represents {list(cluster)}")

    weights = [len(c) for c in result.clusters]
    validation = validate_subset(
        Suite.SPEC2017_SPEED_INT, result.subset, weights=weights
    )
    print(f"\n  estimated-vs-true suite score error: "
          f"mean {validation.mean_error:.1%}, max {validation.max_error:.1%} "
          f"across {len(validation.systems)} commercial systems")


if __name__ == "__main__":
    main()
