#!/usr/bin/env python3
"""Scenario: where does *your* application sit in the SPEC space?

Defines a custom workload model — here an in-memory key-value store —
from first-principles behavioural parameters, profiles it on the seven
paper machines, and places it in the CPU2017 similarity space: which
SPEC benchmarks behave like it, and is it inside the suite's coverage?

This is the methodology a downstream user applies before trusting SPEC
numbers as a proxy for their production workload.
"""

from repro import Suite, analyze_similarity, workloads_in_suite
from repro.workloads.profiles import BranchClass, BranchProfile, ReuseProfile
from repro.workloads.spec import WorkloadSpec
from repro.workloads.spec2017 import _data, _inst
from repro.workloads.profiles import InstructionMix


def build_custom_workload() -> WorkloadSpec:
    """An in-memory key-value store: hash probes over a large heap,
    short well-predicted request loops, moderate code footprint."""
    return WorkloadSpec(
        name="kvstore",
        suite=Suite.EMERGING_DATABASE,
        domain="In-memory KV store",
        language="C++",
        icount_billions=1000,
        mix=InstructionMix.from_percentages(27.0, 9.0, 16.0, fp=0.5),
        # hash probes: most references miss L1 locality but hit in L2/L3
        data_reuse=_data(l2=0.075, l3=0.030, mem=0.008, cold=0.004, sigma=1.2),
        inst_reuse=_inst(hot_lines=350.0, big_share=0.15),
        branches=BranchProfile(
            taken_fraction=0.66,
            classes=(
                BranchClass(0.82, 0.97, 0.85),
                BranchClass(0.14, 0.88, 0.5),
                BranchClass(0.04, 0.68, 0.2),
            ),
            static_branches=5000,
        ),
        data_page_factor=3.0,   # hash scatter: poor page locality
        inst_page_factor=24.0,
        ilp=2.4,
        mlp=2.0,
        footprint_mb=12_000,
    )


def main() -> None:
    custom = build_custom_workload()
    cpu2017 = [
        spec.name
        for spec in workloads_in_suite(
            Suite.SPEC2017_RATE_INT, Suite.SPEC2017_SPEED_INT,
            Suite.SPEC2017_RATE_FP, Suite.SPEC2017_SPEED_FP,
        )
    ]
    result = analyze_similarity(cpu2017 + [custom])

    import numpy as np

    labels = list(result.workloads)
    own = labels.index("kvstore")
    distances = {
        name: result.distances[own, labels.index(name)] for name in cpu2017
    }
    median = float(np.median(result.distances[result.distances > 0]))

    print("== kvstore in the CPU2017 workload space ==")
    print(f"(space: {result.n_components} PCs, "
          f"{result.variance_covered:.0%} variance)\n")
    print("nearest SPEC benchmarks:")
    for name in sorted(distances, key=distances.get)[:5]:
        print(f"  {name:20s} distance {distances[name]:6.2f}")
    nearest = min(distances.values())
    print(f"\nspace median distance: {median:.2f}")
    if nearest <= median:
        proxy = min(distances, key=distances.get)
        print(f"verdict: covered — use {proxy} as a proxy in SPEC-based studies")
    else:
        print("verdict: NOT covered — SPEC results will not transfer; "
              "benchmark your workload directly")


if __name__ == "__main__":
    main()
