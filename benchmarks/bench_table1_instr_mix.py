"""Table I — dynamic instruction count, instruction mix and CPI of the
43 CPU2017 benchmarks on the Skylake reference machine."""

from repro.perf.counters import Metric
from repro.reporting import Table
from repro.workloads.spec import Suite, workloads_in_suite

SUITES = (
    Suite.SPEC2017_SPEED_INT,
    Suite.SPEC2017_RATE_INT,
    Suite.SPEC2017_SPEED_FP,
    Suite.SPEC2017_RATE_FP,
)


def build_table(profiler):
    table = Table(
        ["benchmark", "icount (B)", "loads %", "stores %", "branches %",
         "CPI (model)", "CPI (paper)"],
        title="Table I: instruction counts, mix and CPI (Skylake)",
    )
    rows = []
    for suite in SUITES:
        for spec in workloads_in_suite(suite):
            report = profiler.profile(spec.name, "skylake-i7-6700")
            row = (
                spec.name,
                spec.icount_billions,
                report.metrics[Metric.PCT_LOAD],
                report.metrics[Metric.PCT_STORE],
                report.metrics[Metric.PCT_BRANCH],
                report.metrics[Metric.CPI],
                spec.reference_cpi,
            )
            rows.append(row)
            table.add_row(row)
    return table, rows


def test_table1_instr_mix(run_once, profiler):
    table, rows = run_once(build_table, profiler)
    print()
    print(table.render())
    assert len(rows) == 43
    # Modelled CPI tracks Table I within the calibration tolerance.
    for name, _, _, _, _, model_cpi, paper_cpi in rows:
        assert abs(model_cpi - paper_cpi) / paper_cpi < 0.20, name
