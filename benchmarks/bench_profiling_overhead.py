"""Benchmark — resource-profiler overhead and digest identity.

Times the same process-backend trace sweep with the sampling resource
profiler attached (``--profile all``) and without it, best-of-3 each,
and asserts the guarantee that makes profiling safe to leave on:
report digests are bit-identical in every mode.  The measured sampler
overhead and the merged worker-span counts land in ``extra_info``.

Run as a script for the CI gate (subprocess-isolated, so each variant
pays identical interpreter/import costs)::

    python benchmarks/bench_profiling_overhead.py --check --reps 3 \\
        --budget 0.05

which exits non-zero if digests differ or the best profiled wall time
exceeds ``(1 + budget) x`` the best plain wall time.
"""

import os
import re
import subprocess
import sys
import time

from repro import obs
from repro.obs import profiling
from repro.perf.dataset import build_feature_matrix
from repro.perf.profiler import Profiler

WORKLOADS = (
    "505.mcf_r", "541.leela_r", "525.x264_r", "502.gcc_r",
    "507.cactubssn_r", "519.lbm_r", "549.fotonik3d_r", "511.povray_r",
)
MACHINES = ("skylake-i7-6700", "sparc-t4", "xeon-e5405")
TRACE_INSTRUCTIONS = 20_000
JOBS = 2


def _sweep(profile="off"):
    profiler = Profiler(engine="trace", trace_instructions=TRACE_INSTRUCTIONS)
    return build_feature_matrix(
        WORKLOADS,
        machines=MACHINES,
        profiler=profiler,
        jobs=JOBS,
        backend="process",
        profile=profile,
    )


def test_profiler_overhead(benchmark):
    # Plain best-of-3 by hand; profiled best-of-3 under the benchmark
    # clock.  Neither side enables span tracing, so the delta is the
    # profiler's own cost: samplers, RSS reads, payload shipping.
    plain_best, plain_digest = 1e9, None
    for _ in range(3):
        t0 = time.perf_counter()
        matrix = _sweep(profile="off")
        plain_best = min(plain_best, time.perf_counter() - t0)
        plain_digest = matrix.digest()

    def profiled_sweep():
        profiling.start_session("all")
        try:
            return _sweep(profile="all")
        finally:
            data = profiling.end_session()
            benchmark.extra_info["sampler"] = data.sampler
            benchmark.extra_info["sample_count"] = data.sample_count
            benchmark.extra_info["worker_profiles"] = len(data.workers)
            benchmark.extra_info["peak_rss_bytes"] = data.peak_rss_bytes

    matrix = benchmark.pedantic(profiled_sweep, rounds=3, iterations=1)
    assert matrix.digest() == plain_digest, "profiling changed the results"
    assert benchmark.extra_info["sample_count"] > 0
    assert benchmark.extra_info["worker_profiles"] > 0
    benchmark.extra_info["plain_best_s"] = plain_best
    if benchmark.stats is not None:  # absent under --benchmark-disable
        profiled_best = benchmark.stats.stats.min
        benchmark.extra_info["overhead_pct"] = round(
            100.0 * (profiled_best / plain_best - 1.0), 2
        )


def test_worker_span_merge_counts(benchmark):
    # An observed profiled sweep must stitch every process worker's
    # chunk spans back under the sweep span; the adopted-span counter
    # and the per-pid attribution go to extra_info.
    def observed_sweep():
        obs.metrics.reset()
        obs.enable()
        profiling.start_session("cpu")
        try:
            return _sweep(profile="cpu")
        finally:
            profiling.end_session()
            obs.disable()

    matrix = benchmark.pedantic(observed_sweep, rounds=1, iterations=1)
    assert matrix.n_workloads == len(WORKLOADS)
    snapshot = obs.snapshot()
    chunk_pids = {
        node.pid
        for root in obs.finished_roots()
        for node in root.walk()
        if node.name == "executor.chunk"
    }
    adopted = snapshot["counters"].get("executor.spans.adopted", 0)
    benchmark.extra_info["spans_adopted"] = adopted
    benchmark.extra_info["worker_pids"] = len(chunk_pids - {os.getpid()})
    assert adopted > 0
    assert chunk_pids - {os.getpid()}, "no worker spans were merged"


def _cli_run(profile):
    """One subprocess sweep; returns (wall_seconds, digest)."""
    argv = [
        sys.executable, "-m", "repro.cli", "dataset",
        "--suite", "rate-int", "--engine", "trace",
        "--jobs", "2", "--backend", "process",
    ]
    if profile != "off":
        argv += ["--profile", profile]
    t0 = time.perf_counter()
    proc = subprocess.run(argv, capture_output=True, text=True)
    wall = time.perf_counter() - t0
    if proc.returncode != 0:
        raise SystemExit(
            f"sweep failed ({' '.join(argv)}):\n{proc.stderr[-2000:]}"
        )
    match = re.search(r"digest:\s+([0-9a-f]{64})", proc.stdout)
    if match is None:
        raise SystemExit(f"no digest line in output:\n{proc.stdout[-2000:]}")
    return wall, match.group(1)


def _check(reps, budget):
    """CI gate: digest identity plus the wall-overhead budget."""
    plain, profiled = [], []
    digests = set()
    # Interleave the variants so slow-runner drift hits both equally.
    for rep in range(reps):
        wall, digest = _cli_run("off")
        plain.append(wall)
        digests.add(digest)
        wall, digest = _cli_run("all")
        profiled.append(wall)
        digests.add(digest)
        print(
            f"rep {rep + 1}/{reps}: off {plain[-1]:.2f}s, "
            f"all {profiled[-1]:.2f}s",
            flush=True,
        )
    overhead = min(profiled) / min(plain) - 1.0
    print(f"digests: {len(digests)} distinct ({next(iter(digests))[:16]}...)")
    print(
        f"best-of-{reps}: off {min(plain):.2f}s, all {min(profiled):.2f}s "
        f"-> overhead {100 * overhead:+.1f}% (budget {100 * budget:.0f}%)"
    )
    failed = False
    if len(digests) != 1:
        print("FAIL: --profile all changed the report digest")
        failed = True
    if overhead > budget:
        print("FAIL: profiler overhead exceeds the budget")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    import argparse

    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument("--check", action="store_true",
                     help="run the CI digest/overhead gate")
    cli.add_argument("--reps", type=int, default=3,
                     help="sweeps per variant (best-of-N)")
    cli.add_argument("--budget", type=float, default=0.05,
                     help="allowed fractional wall overhead")
    options = cli.parse_args()
    if not options.check:
        cli.error("use --check (or run under pytest for the benchmarks)")
    sys.exit(_check(options.reps, options.budget))
