"""Figure 13 — CPU2017 vs EDA, database (Cassandra/YCSB) and
graph-analytics workloads."""

from repro.core.casestudies import analyze_case_studies
from repro.reporting import Table


def test_fig13_case_studies(run_once, profiler):
    report = run_once(analyze_case_studies, profiler=profiler)
    print()
    print("Figure 13: emerging workloads vs the CPU2017 cloud")
    table = Table(
        ["workload", "nearest CPU2017", "distance", "distance / median",
         "covered"],
        title=f"(CPU2017 median pairwise distance: "
              f"{report.median_cpu2017_distance:.2f})",
    )
    for name, (nearest, distance) in sorted(report.nearest_cpu2017.items()):
        table.add_row([
            name, nearest, distance, report.coverage_ratio(name),
            "yes" if report.is_covered(name) else "NO",
        ])
    print(table.render())

    # Paper shape (Sections V-D/E/F):
    # EDA covered, closest to mcf.
    for name in ("175.vpr", "300.twolf"):
        assert report.is_covered(name)
        assert "mcf" in report.nearest_cpu2017[name][0]
    # Cassandra far outside (I-cache / I-TLB behaviour).
    for name in ("cas-WA", "cas-WC"):
        assert not report.is_covered(name)
    # pagerank distinct (D-TLB pressure); cc covered near leela/deepsjeng/xz.
    for name in ("pr-g1", "pr-g2"):
        assert not report.is_covered(name)
    for name in ("cc-g1", "cc-g2"):
        assert report.is_covered(name)
        family = report.nearest_cpu2017[name][0].split(".")[1].rsplit("_", 1)[0]
        assert family in ("leela", "deepsjeng", "xz")
