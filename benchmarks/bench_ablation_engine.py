"""Ablation — analytic vs trace profiling engine.

Profiles a workload sample with both engines and compares the derived
metrics and their cross-workload ordering, quantifying how much the
closed-form shortcut costs in fidelity (and how much it buys in speed).
"""

import time

import numpy as np
from scipy.stats import spearmanr

from repro.perf.counters import Metric
from repro.perf.profiler import Profiler
from repro.reporting import Table

WORKLOADS = (
    "505.mcf_r", "541.leela_r", "525.x264_r", "502.gcc_r",
    "507.cactubssn_r", "519.lbm_r", "549.fotonik3d_r", "511.povray_r",
)
MACHINE = "skylake-i7-6700"
COMPARED = (
    Metric.L1D_MPKI, Metric.L2D_MPKI, Metric.L1I_MPKI,
    Metric.BRANCH_MPKI, Metric.L1_DTLB_MPMI, Metric.CPI,
)


def build(_ignored):
    analytic = Profiler("analytic")
    trace = Profiler("trace", trace_instructions=60_000)
    t0 = time.perf_counter()
    analytic_reports = {w: analytic.profile(w, MACHINE) for w in WORKLOADS}
    t_analytic = time.perf_counter() - t0
    t0 = time.perf_counter()
    trace_reports = {w: trace.profile(w, MACHINE) for w in WORKLOADS}
    t_trace = time.perf_counter() - t0
    return analytic_reports, trace_reports, t_analytic, t_trace


def test_ablation_engine(run_once):
    analytic, trace, t_analytic, t_trace = run_once(build, None)
    table = Table(
        ["metric", "rank correlation", "median |rel diff|"],
        title="Ablation: analytic vs trace engine agreement",
    )
    for metric in COMPARED:
        a = np.array([analytic[w].metrics[metric] for w in WORKLOADS])
        t = np.array([trace[w].metrics[metric] for w in WORKLOADS])
        rho, _ = spearmanr(a, t)
        denominator = np.where(np.abs(a) > 1e-9, np.abs(a), 1.0)
        rel = np.median(np.abs(t - a) / denominator)
        table.add_row([metric.value, rho, rel])
    print()
    print(table.render())
    print(f"profiling time: analytic {t_analytic*1e3:.1f} ms, "
          f"trace {t_trace*1e3:.0f} ms "
          f"({t_trace / max(t_analytic, 1e-9):.0f}x slower)")

    # The analytic shortcut preserves the cross-workload ordering the
    # similarity analyses depend on.
    for metric in (Metric.L1D_MPKI, Metric.BRANCH_MPKI, Metric.CPI):
        a = [analytic[w].metrics[metric] for w in WORKLOADS]
        t = [trace[w].metrics[metric] for w in WORKLOADS]
        rho, _ = spearmanr(a, t)
        assert rho > 0.8, metric
    assert t_trace > t_analytic
