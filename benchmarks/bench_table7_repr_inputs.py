"""Table VII — the most representative input set of each multi-input
CPU2017 benchmark (the input closest to the aggregated benchmark)."""

from repro.core.inputsets import PAPER_REPRESENTATIVE_INPUTS, analyze_input_sets
from repro.reporting import Table
from repro.workloads.spec import Suite


def build(profiler):
    int_analysis = analyze_input_sets(
        suites=(Suite.SPEC2017_RATE_INT, Suite.SPEC2017_SPEED_INT),
        profiler=profiler,
    )
    fp_analysis = analyze_input_sets(
        suites=(Suite.SPEC2017_RATE_FP, Suite.SPEC2017_SPEED_FP),
        profiler=profiler,
    )
    combined = dict(int_analysis.representative)
    combined.update(fp_analysis.representative)
    return combined


def test_table7_representative_inputs(run_once, profiler):
    representative = run_once(build, profiler)
    table = Table(
        ["benchmark", "model input set", "paper input set", "match"],
        title="Table VII: representative input sets",
    )
    matches = 0
    for name, paper_index in sorted(PAPER_REPRESENTATIVE_INPUTS.items()):
        model_index = representative.get(name)
        match = model_index == paper_index
        matches += match
        table.add_row([name, model_index, paper_index, "yes" if match else "NO"])
    print()
    print(table.render())
    # Shape: the selection methodology reproduces the paper's table on
    # all but at most two benchmarks.
    assert matches >= len(PAPER_REPRESENTATIVE_INPUTS) - 2
    assert set(representative) == set(PAPER_REPRESENTATIVE_INPUTS)
