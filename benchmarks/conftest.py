"""Shared benchmark fixtures and helpers.

Every bench regenerates one table or figure of the paper.  Benches run
under ``pytest benchmarks/ --benchmark-only``; each prints the
reproduced rows/series (visible with ``-s``) and asserts the paper's
qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.perf.profiler import Profiler


@pytest.fixture(scope="session")
def profiler() -> Profiler:
    return Profiler()


@pytest.fixture
def run_once(benchmark):
    """Run an analysis exactly once under the benchmark clock.

    The analyses are deterministic and internally cached, so repeated
    timing rounds would only measure the cache; one cold round is the
    meaningful number.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
