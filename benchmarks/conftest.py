"""Shared benchmark fixtures and helpers.

Every bench regenerates one table or figure of the paper.  Benches run
under ``pytest benchmarks/ --benchmark-only``; each prints the
reproduced rows/series (visible with ``-s``) and asserts the paper's
qualitative shape.

Observability: each timed run executes with the obs layer enabled, and
its span tree plus metrics snapshot are attached to the benchmark's
``extra_info`` — so the timing JSON produced with ``--benchmark-json``
carries stage-level attribution (where inside the pipeline the time
went), not just a single wall-clock number.  Each run is also recorded
in the run-history ledger (``$REPRO_OBS_DIR``, default ``.repro-obs``),
keyed per bench, so ``repro obs check`` can flag statistical
regressions across bench invocations exactly as it does for CLI runs.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.perf.profiler import Profiler


@pytest.fixture(scope="session")
def profiler() -> Profiler:
    return Profiler()


@pytest.fixture
def run_once(benchmark):
    """Run an analysis exactly once under the benchmark clock.

    The analyses are deterministic and internally cached, so repeated
    timing rounds would only measure the cache; one cold round is the
    meaningful number.  The run is observed: its span tree and metric
    snapshot land in ``benchmark.extra_info["obs"]``.
    """

    def runner(fn, *args, **kwargs):
        obs.metrics.reset()
        obs.enable()
        try:
            result = benchmark.pedantic(
                fn, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
        finally:
            obs.disable()
        roots = obs.finished_roots()
        snapshot = obs.snapshot()
        benchmark.extra_info["obs"] = {
            "spans": [root.to_dict() for root in roots],
            "metrics": snapshot,
        }
        # Numeric extra_info present at record time (i.e. set *before*
        # run_once) becomes ``bench.<key>`` counter series in the
        # ledger manifest, so ``repro obs check`` baselines measured
        # bench numbers (seconds, speedups) like any other counter.
        measured = {
            f"bench.{key}": float(value)
            for key, value in benchmark.extra_info.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if measured:
            counters = dict(snapshot.get("counters", {}))
            counters.update(measured)
            snapshot = dict(snapshot, counters=counters)
        manifest = obs.manifest.build_manifest(
            "bench", [benchmark.name], roots, snapshot
        )
        info = obs.history.record_run(manifest)
        benchmark.extra_info["obs"]["run_id"] = info.id
        obs.reset()
        return result

    return runner
