"""Benchmark — campaign-scheduled sweep vs the naive per-machine loop.

Times a *warm-trace* design-space grid — 1000 generated machines
(:func:`repro.campaign.generator.generate_machines`) x the six-workload
campaign mix — two ways.  The **naive** baseline is what a campaign
engine replaces: loop over machines one at a time, replaying each
workload's trace independently per machine (6000 separate replays).
The **campaign** path is the engine's schedule: machines sorted by
:func:`~repro.campaign.generator.structure_key` so same-geometry
configs are adjacent, then one fused batch per workload sharing
set-partitions and per-level replay passes across the whole population.

The bench asserts the ISSUE's acceptance bar — the campaign schedule is
>= 5x faster than the naive loop — behind a **bit-identical-digest
gate**: every one of the 6000 (workload, machine) pairs must produce
the same report digest under both paths before any timing counts.  The
generator's discrete perturbation grids are what make the win possible:
1000 machines collapse to tens of distinct structure geometries per
fused pass.

Scale knobs (for CI-sized runs): ``REPRO_BENCH_CAMPAIGN_MACHINES``,
``REPRO_BENCH_CAMPAIGN_INSTRUCTIONS``.
"""

import os
import time

from repro.campaign import generate_machines, structure_key
from repro.perf.trace_cache import TraceCache
from repro.perf.trace_engine import profile_trace_batch
from repro.workloads.spec import get_workload

WORKLOADS = (
    "505.mcf_r",
    "500.perlbench_r",
    "525.x264_r",
    "519.lbm_r",
    "557.xz_r",
    "502.gcc_r",
)
MACHINES = int(os.environ.get("REPRO_BENCH_CAMPAIGN_MACHINES", "1000"))
TRACE_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_CAMPAIGN_INSTRUCTIONS", "20000")
)

#: The acceptance bar: campaign-scheduled sweep speedup over the naive
#: per-machine loop, bit-identical per-pair digests required.
SPEEDUP_FLOOR = 5.0


def _naive_sweep(machines, cache):
    """The loop a campaign engine replaces: one replay per pair."""
    reports = []
    for workload in WORKLOADS:
        spec = get_workload(workload)
        for machine in machines:
            reports.extend(
                profile_trace_batch(
                    spec,
                    [machine],
                    instructions=TRACE_INSTRUCTIONS,
                    kernel="vector",
                    seed_scope="geometry",
                    replay="independent",
                    trace_cache=cache,
                )
            )
    return reports


def _campaign_sweep(machines, cache):
    """The campaign schedule: structure-sorted fused batches."""
    ordered = sorted(machines, key=structure_key)
    reports = []
    for workload in WORKLOADS:
        reports.extend(
            profile_trace_batch(
                get_workload(workload),
                ordered,
                instructions=TRACE_INSTRUCTIONS,
                kernel="vector",
                seed_scope="geometry",
                replay="fused",
                trace_cache=cache,
            )
        )
    return reports


def _digests(reports):
    from tests.parity import report_digest

    return {
        (report.workload, report.machine): report_digest(report)
        for report in reports
    }


def test_campaign_sweep_speedup(run_once, benchmark):
    machines = generate_machines(MACHINES)
    cache = TraceCache()
    # Warm the trace cache (synthesis off the clock) via the fast path,
    # then take the one timed naive pass — it doubles as the digest
    # reference, so the 6000-replay baseline runs exactly once.
    campaign_reports = _campaign_sweep(machines, cache)
    t0 = time.perf_counter()
    naive_reports = _naive_sweep(machines, cache)
    naive_time = time.perf_counter() - t0

    # Bit-identity gate: any pair differing between the two schedules
    # disqualifies the speedup before it is measured.
    want = _digests(naive_reports)
    got = _digests(campaign_reports)
    assert len(want) == len(WORKLOADS) * MACHINES
    assert got == want

    campaign_time = float("inf")
    # Best-of-3 on the fast path; the naive baseline is long enough
    # that single-pass noise is proportionally negligible.
    for _ in range(3):
        t0 = time.perf_counter()
        _campaign_sweep(machines, cache)
        campaign_time = min(campaign_time, time.perf_counter() - t0)

    # Set before run_once so the ledger manifest carries these as
    # ``bench.*`` counters for ``repro obs check``.
    benchmark.extra_info["naive_seconds"] = naive_time
    benchmark.extra_info["campaign_seconds"] = campaign_time
    benchmark.extra_info["speedup"] = naive_time / campaign_time
    benchmark.extra_info["machines"] = MACHINES
    benchmark.extra_info["workloads"] = len(WORKLOADS)
    benchmark.extra_info["trace_instructions"] = TRACE_INSTRUCTIONS
    benchmark.extra_info["pairs_bit_identical"] = True
    reports = run_once(_campaign_sweep, machines, cache)
    assert len(reports) == len(WORKLOADS) * MACHINES
    assert naive_time >= SPEEDUP_FLOOR * campaign_time, (
        f"naive {naive_time:.3f}s vs campaign {campaign_time:.3f}s "
        f"({naive_time / campaign_time:.2f}x < {SPEEDUP_FLOOR}x)"
    )
