"""Ablation — prefetch coverage across access-pattern classes.

Validates the calibration decision to fold prefetching into each
workload's effective memory-level parallelism: the access-pattern
classes the paper's workloads embody (unit-stride streaming for
lbm/bwaves-style code, long strides for blocked array sweeps, pointer
chasing for mcf/omnetpp) have very different prefetch coverability,
matching the large/small calibrated MLP values.

Note: the trace *synthesizer* reproduces temporal locality (reuse
distances) but not spatial sequentiality, so this ablation drives the
prefetchers with explicit pattern kernels rather than synthesized
workload traces.
"""

import numpy as np

from repro.reporting import Table
from repro.uarch.cache import Cache, CacheConfig
from repro.uarch.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.workloads.spec import get_workload

N = 30_000


def _streaming(n):
    """Unit-stride sweep over a large array (lbm/bwaves inner loops)."""
    return (np.arange(n, dtype=np.int64) % 100_000) * 64


def _strided(n):
    """Blocked sweep with a 4-line stride (row-of-matrix walks)."""
    return (np.arange(n, dtype=np.int64) % 50_000) * 256


def _pointer_chase(n, seed=0):
    """Random permutation walk over a large heap (mcf arcs)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 22, n) * 64


PATTERNS = {
    "streaming (lbm/bwaves-like)": (_streaming, "519.lbm_r"),
    "strided (blocked sweeps)": (_strided, "554.roms_r"),
    "pointer chase (mcf-like)": (_pointer_chase, "505.mcf_r"),
}


def build(_ignored):
    results = {}
    for label, (generator, exemplar) in PATTERNS.items():
        addresses = generator(N)
        row = {}
        for pf_label, factory in (
            ("next-line", lambda c: NextLinePrefetcher(c, degree=2)),
            ("stride", lambda c: StridePrefetcher(c, degree=4)),
        ):
            cache = Cache(CacheConfig(512 * 64, 64, 8))
            prefetcher = factory(cache)
            for address in addresses:
                prefetcher.access(int(address))
            row[pf_label] = prefetcher.stats
        results[label] = (row, get_workload(exemplar).mlp)
    return results


def test_ablation_prefetch_coverage(run_once):
    results = run_once(build, None)
    table = Table(
        ["access pattern", "next-line coverage", "stride coverage",
         "stride accuracy", "exemplar calibrated MLP"],
        title="Ablation: prefetch coverage vs calibrated effective MLP",
    )
    for label, (row, mlp) in results.items():
        table.add_row([
            label,
            f"{row['next-line'].coverage:.0%}",
            f"{row['stride'].coverage:.0%}",
            f"{row['stride'].accuracy:.0%}",
            mlp,
        ])
    print()
    print(table.render())

    streaming = results["streaming (lbm/bwaves-like)"][0]
    strided = results["strided (blocked sweeps)"][0]
    chasing = results["pointer chase (mcf-like)"][0]
    # Streaming: both prefetchers cover well.
    assert streaming["next-line"].coverage > 0.6
    assert streaming["stride"].coverage > 0.6
    # Strides defeat next-line but not the stride detector.
    assert strided["stride"].coverage > strided["next-line"].coverage + 0.2
    # Pointer chasing defeats both.
    assert chasing["stride"].coverage < 0.1
    assert chasing["next-line"].coverage < 0.1
    # The calibrated effective MLP of the exemplars reflects the same
    # ordering (streaming exemplar >> pointer-chasing exemplar).
    assert results["streaming (lbm/bwaves-like)"][1] > results[
        "pointer chase (mcf-like)"
    ][1]
