"""Benchmark — appending one machine to the analysis vs a full refit.

Builds a 1000-row persistent feature store (synthetic seeded machine
rows, a handful of well-separated populations to give k-means real
structure) and compares the two ways to fold one newly-landed machine
into the PCA + k-means + representative-selection pipeline:

* **batch** — what every fold cost before the incremental engine: a
  full ``fit_pca`` over the grown matrix, restarted k-means (8
  k-means++ restarts) and a full representative rescan.
* **incremental** — ``AnalysisEngine.append``: one checksummed store
  append, a rank-one PCA update (exact refactorization only when the
  tracked drift bound trips), seeded Lloyd iterations from the previous
  assignment, and representative re-scoring limited to the clusters
  whose membership changed.

The ISSUE's acceptance bar: the append path is >= 10x faster than the
batch refit, behind two accuracy gates that disqualify the speedup
before it is measured —

1. a **tolerance gate**: the engine's retained eigenvalues, loadings
   and scores stay within ``SCORE_TOLERANCE`` of a fresh ``fit_pca``;
2. a **digest gate**: after a forced refactorization the engine's
   result is bit-comparable (``==`` on every array) with ``fit_pca``.

Scale knobs (for CI-sized runs): ``REPRO_BENCH_ANALYSIS_ROWS``,
``REPRO_BENCH_ANALYSIS_FEATURES``.
"""

import os
import time

import numpy as np

from repro.core.feature_store import AnalysisEngine, FeatureMatrixStore
from repro.stats.incremental import SCORE_TOLERANCE
from repro.stats.kmeans import kmeans
from repro.stats.pca import fit_pca

ROWS = int(os.environ.get("REPRO_BENCH_ANALYSIS_ROWS", "1000"))
FEATURES = int(os.environ.get("REPRO_BENCH_ANALYSIS_FEATURES", "48"))
CLUSTERS = 12
APPENDS = 5

#: The acceptance bar: one-machine append vs the full batch refit.
SPEEDUP_FLOOR = 10.0


def _population(rows: int) -> np.ndarray:
    """Seeded machine rows around anisotropic design-space modes.

    Mode strength decays geometrically so the correlation spectrum has
    distinct retained eigenvalues, like a real machine population —
    perfectly symmetric modes would make the retained eigenvalues
    degenerate and the comparison against ``fit_pca`` ill-posed (any
    rotation of a degenerate eigenspace is equally correct).
    """
    rng = np.random.default_rng(2017)
    scales = 3.0 * 0.75 ** np.arange(CLUSTERS)
    centers = rng.normal(size=(CLUSTERS, FEATURES)) * scales[:, None]
    return np.stack(
        [
            centers[i % CLUSTERS] + rng.normal(size=FEATURES) * 0.5
            for i in range(rows)
        ]
    )


def _batch_analysis(matrix, labels):
    """The pre-engine fold: full PCA refit + restarted k-means."""
    pca = fit_pca(matrix, tuple(f"f{i}" for i in range(matrix.shape[1])))
    scores = pca.retained_scores()
    clustering = kmeans(scores, CLUSTERS, seed=2017)
    return pca, clustering, clustering.representatives(scores, labels)


def test_incremental_append_speedup(run_once, benchmark, tmp_path):
    population = _population(ROWS + APPENDS + 1)
    base, pending = population[:ROWS], population[ROWS:]
    labels = [f"m{i:04d}" for i in range(ROWS)]

    store = FeatureMatrixStore.create(tmp_path / "store", [
        f"f{i}" for i in range(FEATURES)
    ])
    for label, row in zip(labels, base):
        store.append_workload(label, row)
    engine = AnalysisEngine(store, clusters=CLUSTERS, seed=2017)
    engine.refresh()

    # Batch baseline: best-of-3 full refits over the grown matrix —
    # exactly the work a fold re-did per landed machine before the
    # incremental engine.
    grown = np.vstack([base, pending[0]])
    grown_labels = labels + ["m_new"]
    batch_time = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _batch_analysis(grown, grown_labels)
        batch_time = min(batch_time, time.perf_counter() - t0)

    # Incremental: APPENDS timed single-machine appends (store write +
    # rank-one update + seeded Lloyd + changed-cluster rescore); take
    # the best to match the baseline's best-of policy.
    append_time = float("inf")
    for i in range(APPENDS):
        t0 = time.perf_counter()
        engine.append(f"new{i:02d}", pending[i])
        append_time = min(append_time, time.perf_counter() - t0)

    # Tolerance gate: the engine's approximate eigensystem must agree
    # with a fresh batch fit on everything the pipeline consumes.
    matrix = store.values()
    exact = fit_pca(matrix, store.features)
    approx = engine.pca.result(matrix)
    k = exact.kaiser_components
    assert approx.kaiser_components == k
    eig_err = float(np.abs(approx.eigenvalues[:k] - exact.eigenvalues[:k]).max())
    loading_err = float(
        np.abs(np.abs(approx.loadings[:k]) - np.abs(exact.loadings[:k])).max()
    )
    score_err = float(
        np.abs(
            np.abs(approx.retained_scores()) - np.abs(exact.retained_scores())
        ).max()
    )
    assert eig_err < SCORE_TOLERANCE
    assert loading_err < SCORE_TOLERANCE
    assert score_err < SCORE_TOLERANCE

    # Digest gate: a forced refactorization restores bit-comparable
    # results — the engine's exact path *is* ``fit_pca``.
    engine.force_refactorization()
    refit = engine.pca.result(store.values())
    assert (refit.eigenvalues == exact.eigenvalues).all()
    assert (refit.loadings == exact.loadings).all()
    assert (refit.scores == exact.scores).all()
    assert refit.kaiser_components == exact.kaiser_components

    # Set before run_once so the ledger manifest carries these as
    # ``bench.*`` counters for ``repro obs check``.
    benchmark.extra_info["batch_seconds"] = batch_time
    benchmark.extra_info["append_seconds"] = append_time
    benchmark.extra_info["speedup"] = batch_time / append_time
    benchmark.extra_info["rows"] = ROWS
    benchmark.extra_info["features"] = FEATURES
    benchmark.extra_info["clusters"] = CLUSTERS
    benchmark.extra_info["eigenvalue_error"] = eig_err
    benchmark.extra_info["loading_error"] = loading_err
    benchmark.extra_info["score_error"] = score_err
    benchmark.extra_info["refactorizations"] = engine.pca.refactorizations
    benchmark.extra_info["bit_identical_after_refactorization"] = True

    report = run_once(engine.append, "m_timed", pending[APPENDS])
    assert report["index"] == ROWS + APPENDS

    print(
        f"\nbatch refit {batch_time * 1e3:.1f} ms vs append "
        f"{append_time * 1e3:.2f} ms ({batch_time / append_time:.1f}x) "
        f"at {ROWS} rows x {FEATURES} features; "
        f"score error {score_err:.2e} (tolerance {SCORE_TOLERANCE})"
    )
    assert batch_time >= SPEEDUP_FLOOR * append_time, (
        f"batch {batch_time:.4f}s vs append {append_time:.4f}s "
        f"({batch_time / append_time:.2f}x < {SPEEDUP_FLOOR}x)"
    )
