"""Ablation — how does the linkage method affect subset selection?

The paper fixes one clustering configuration; this ablation sweeps the
four standard linkage methods and measures the validation error of the
resulting 3-benchmark subsets, showing the conclusion is not an
artifact of the linkage choice.
"""

from repro.core.similarity import analyze_similarity
from repro.core.subsetting import select_subset
from repro.core.validation import validate_subset
from repro.reporting import Table
from repro.stats.cluster import Linkage
from repro.workloads.spec import Suite, workloads_in_suite

SUITE = Suite.SPEC2017_RATE_INT


def build(profiler):
    names = [s.name for s in workloads_in_suite(SUITE)]
    out = {}
    for linkage in Linkage:
        result = analyze_similarity(names, linkage=linkage, profiler=profiler)
        subset = select_subset(result, 3)
        weights = [len(c) for c in subset.clusters]
        validation = validate_subset(
            SUITE, subset.subset, weights=weights, profiler=profiler
        )
        out[linkage] = (subset, validation)
    return out


def test_ablation_linkage(run_once, profiler):
    results = run_once(build, profiler)
    table = Table(
        ["linkage", "subset", "mean error %", "most distinct"],
        title="Ablation: linkage method vs subset quality (SPECrate INT)",
    )
    for linkage, (subset, validation) in results.items():
        table.add_row([
            linkage.value,
            ", ".join(sorted(subset.subset)),
            validation.mean_error * 100,
            subset.similarity.tree.most_distinct_leaf(),
        ])
    print()
    print(table.render())
    # Robustness: every linkage keeps mcf in the subset and stays within
    # the paper's accuracy band.  (Which benchmark merges last *does*
    # depend on the linkage — single/Ward favour xalancbmk — which is
    # itself a finding of this ablation.)
    for linkage, (subset, validation) in results.items():
        assert "505.mcf_r" in subset.subset, linkage
        assert validation.mean_error <= 0.15, linkage
    average_result = results[Linkage.AVERAGE][0]
    assert average_result.similarity.tree.most_distinct_leaf() == "505.mcf_r"
