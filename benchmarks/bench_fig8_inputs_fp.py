"""Figure 8 — similarity between the input sets of the CPU2017 FP
benchmarks (bwaves is the only multi-input FP benchmark)."""

import numpy as np

from repro.core.inputsets import analyze_input_sets
from repro.stats.dendrogram import render_dendrogram
from repro.workloads.spec import Suite


def build(profiler):
    return analyze_input_sets(
        suites=(Suite.SPEC2017_RATE_FP, Suite.SPEC2017_SPEED_FP),
        profiler=profiler,
    )


def test_fig8_input_sets_fp(run_once, profiler):
    analysis = run_once(build, profiler)
    print()
    print(f"Figure 8: FP input-set dendrogram "
          f"({analysis.n_components} PCs, {analysis.variance_covered:.0%} "
          f"variance; paper: 12 PCs, 94%)")
    print(render_dendrogram(analysis.tree).text)
    assert set(analysis.representative) == {"503.bwaves_r", "603.bwaves_s"}
    # bwaves' two inputs sit close together relative to the space.
    scale = float(np.median(analysis.distances[analysis.distances > 0]))
    for name, cohesion in analysis.input_cohesion.items():
        assert cohesion < scale, name
