"""Table IX — sensitivity of the CPU2017 benchmarks to branch
predictor, L1 D-cache and data-TLB configuration across machines."""

from repro.core.sensitivity import SENSITIVITY_CHARACTERISTICS, classify_sensitivity
from repro.reporting import Table

#: Table IX highlights (high-sensitivity rows).
PAPER_HIGH = {
    "branch_prediction": {"603.bwaves_s", "503.bwaves_r"},
    "l1_dcache": {"549.fotonik3d_r", "649.fotonik3d_s"},
    "l1_dtlb": {
        "503.bwaves_r", "507.cactubssn_r", "557.xz_r", "511.povray_r",
        "657.xz_s", "649.fotonik3d_s", "607.cactubssn_s",
    },
}


def build(profiler):
    return {
        characteristic: classify_sensitivity(characteristic, profiler=profiler)
        for characteristic in SENSITIVITY_CHARACTERISTICS
    }


def test_table9_sensitivity(run_once, profiler):
    reports = run_once(build, profiler)
    table = Table(
        ["characteristic", "level", "benchmarks"],
        title="Table IX: cross-machine sensitivity classification",
    )
    for characteristic, report in reports.items():
        table.add_row([characteristic, "high", ", ".join(sorted(report.high))])
        table.add_row([characteristic, "medium", ", ".join(sorted(report.medium))])
    print()
    print(table.render())

    # Shape: a substantial share of the paper's high-sensitivity
    # benchmarks lands in our high+medium bins overall.  Per-
    # characteristic membership is unstable by construction: a
    # benchmark that is the *worst* on every machine (our fotonik3d /
    # cactuBSSN for cache/TLB) has zero rank spread and reads as
    # insensitive — the same artifact the paper's own caveat describes
    # for leela/xz/mcf under branch prediction.
    total_paper = total_overlap = 0
    for characteristic, report in reports.items():
        paper_high = PAPER_HIGH[characteristic]
        flagged = set(report.high) | set(report.medium)
        overlap = paper_high & flagged
        total_paper += len(paper_high)
        total_overlap += len(overlap)
        print(f"{characteristic}: paper-high recovered in model "
              f"high+medium: {len(overlap)}/{len(paper_high)}")
    assert total_overlap * 3 >= total_paper

    # Paper caveat: leela is branch-INsensitive because it mispredicts
    # badly everywhere.
    branch = reports["branch_prediction"]
    assert branch.level_of("541.leela_r") in ("low", "medium")
