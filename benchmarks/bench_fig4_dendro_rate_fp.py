"""Figure 4 — dendrogram of the SPECrate FP benchmarks."""

from repro.core.similarity import analyze_similarity
from repro.workloads.spec import Suite, workloads_in_suite


def build(profiler):
    names = [s.name for s in workloads_in_suite(Suite.SPEC2017_RATE_FP)]
    return analyze_similarity(names, profiler=profiler)


def test_fig4_dendrogram_rate_fp(run_once, profiler):
    result = run_once(build, profiler)
    print()
    print(f"Figure 4: SPECrate FP dendrogram "
          f"({result.n_components} PCs, {result.variance_covered:.0%} variance)")
    print(result.dendrogram().text)
    assert result.tree.most_distinct_leaf() == "507.cactubssn_r"
    # fotonik3d shares cactuBSSN's poor-data-locality corner and joins
    # it before the bulk of the suite does.
    distance = result.tree.cophenetic_distance(
        "507.cactubssn_r", "549.fotonik3d_r"
    )
    assert distance <= result.tree.heights[-1]
