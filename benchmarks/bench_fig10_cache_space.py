"""Figure 10 — the CPU2017 benchmarks in the data-cache and
instruction-cache PC spaces."""

from repro.core.classification import dcache_space, extremes, icache_space
from repro.perf.counters import Metric
from repro.reporting import ScatterSeries, render_scatter


def build(profiler):
    return dcache_space(profiler=profiler), icache_space(profiler=profiler)


def test_fig10_cache_spaces(run_once, profiler):
    dcache, icache = run_once(build, profiler)
    print()
    print("Figure 10 (left): data-cache PC space")
    print(render_scatter([ScatterSeries.from_dict("CPU2017", dcache.points)]))
    print("PC1 dominated by:", ", ".join(dcache.dominated_by[1]))
    print()
    print("Figure 10 (right): instruction-cache PC space")
    print(render_scatter([ScatterSeries.from_dict("CPU2017", icache.points)]))
    print("PC1 dominated by:", ", ".join(icache.dominated_by[1]))

    worst_data = [n for n, _ in extremes(Metric.L1D_MPKI, top=8, profiler=profiler)]
    worst_inst = [n for n, _ in extremes(Metric.L1I_MPKI, top=6, profiler=profiler)]
    print("worst data locality:", worst_data,
          "(paper: mcf, cactuBSSN, fotonik3d)")
    print("highest I-cache activity:", worst_inst, "(paper: perlbench, gcc)")

    data_families = {w.split(".")[1].rsplit("_", 1)[0] for w in worst_data}
    assert {"cactubssn", "fotonik3d"} <= data_families
    inst_families = {w.split(".")[1].rsplit("_", 1)[0] for w in worst_inst}
    assert "gcc" in inst_families

    # Paper: CPU2017 I-cache MPKI stays modest (0-11 band) — nothing
    # like scale-out workloads.
    for _, value in extremes(Metric.L1I_MPKI, top=1, profiler=profiler):
        assert value < 15.0
