"""Figure 6 — validation of the FP subsets against commercial-system
scores."""

from repro.core.subsetting import subset_suite
from repro.core.validation import validate_subset
from repro.reporting import Table
from repro.workloads.spec import Suite

#: Paper's average errors: speed FP ~3%, rate FP ~4.5%.
PAPER_MEAN_ERROR = {Suite.SPEC2017_SPEED_FP: 0.03, Suite.SPEC2017_RATE_FP: 0.045}


def build(_ignored):
    out = {}
    for suite in (Suite.SPEC2017_SPEED_FP, Suite.SPEC2017_RATE_FP):
        subset = subset_suite(suite, k=3)
        weights = [len(c) for c in subset.clusters]
        out[suite] = validate_subset(suite, subset.subset, weights=weights)
    return out


def test_fig6_validation_fp(run_once):
    results = run_once(build, None)
    table = Table(
        ["sub-suite", "system", "full score", "subset score", "error %"],
        title="Figure 6: FP subset validation on commercial systems",
    )
    for suite, validation in results.items():
        for system in validation.systems:
            table.add_row([
                suite.value, system.system, system.full_score,
                system.subset_score, system.error * 100,
            ])
    print()
    print(table.render())
    for suite, validation in results.items():
        print(f"{suite.value}: mean error {validation.mean_error:.1%} "
              f"(paper: {PAPER_MEAN_ERROR[suite]:.1%})")
        assert validation.mean_error <= 0.12
