"""Table VIII — application-domain classification and the distinct
benchmarks that must be run to cover each domain."""

from repro.core.domain_analysis import analyze_domains
from repro.reporting import Table
from repro.workloads.domains import PAPER_DISTINCT, all_domains


def test_table8_domains(run_once, profiler):
    report = run_once(analyze_domains, profiler=profiler)
    table = Table(
        ["domain", "members", "model distinct", "paper distinct"],
        title="Table VIII: application domains and distinct benchmarks",
    )
    paper = set(PAPER_DISTINCT)
    for domain, members in all_domains().items():
        table.add_row([
            domain,
            len(members),
            ", ".join(sorted(report.distinct[domain])),
            ", ".join(sorted(m for m in members if m in paper)),
        ])
    print()
    print(table.render())

    # Shape: every domain keeps at least one benchmark; the compact
    # domains match the paper's marking.
    for domain in all_domains():
        assert report.distinct[domain]
    assert report.distinct["Biomedical"] == ("510.parest_r",)
    assert set(report.distinct["Combinatorial optimization"]) == {"505.mcf_r"}
    # Speed twins that mirror rate twins never appear.
    for members in report.distinct.values():
        for name in members:
            if name.startswith("6") and name not in ("628.pop2_s",):
                # a speed benchmark is marked only when its rate twin
                # behaves differently
                from repro.workloads.spec import get_workload

                twin = get_workload(name).rate_partner
                assert twin is None or report.twin_distance[twin] > 0
