"""Figure 1 — CPI stacks of the CPU2017 rate benchmarks (Skylake)."""

from repro.reporting import Table
from repro.workloads.spec import Suite, workloads_in_suite


def build_stacks(profiler):
    stacks = {}
    for spec in workloads_in_suite(Suite.SPEC2017_RATE_INT, Suite.SPEC2017_RATE_FP):
        stacks[spec.name] = profiler.profile(spec.name, "skylake-i7-6700").cpi_stack
    return stacks


def test_fig1_cpi_stacks(run_once, profiler):
    stacks = run_once(build_stacks, profiler)
    table = Table(
        ["benchmark", "total", "base", "other(dep)", "frontend", "bad spec",
         "L2", "L3", "mem", "TLB"],
        title="Figure 1: CPI stacks, CPU2017 rate benchmarks (Skylake)",
        precision=3,
    )
    for name, stack in sorted(stacks.items()):
        table.add_row([
            name, stack.total, stack.base, stack.dependency, stack.frontend,
            stack.bad_speculation, stack.backend_l2, stack.backend_l3,
            stack.backend_memory, stack.backend_tlb,
        ])
    print()
    print(table.render())

    # Paper shape: mcf_r/omnetpp_r near the top of the CPI ranking ...
    totals = {name: stack.total for name, stack in stacks.items()}
    worst = set(sorted(totals, key=totals.get, reverse=True)[:3])
    assert {"505.mcf_r", "520.omnetpp_r"} <= worst
    # ... memory-bound codes dominated by back-end stalls ...
    for name in ("520.omnetpp_r", "523.xalancbmk_r", "505.mcf_r", "549.fotonik3d_r"):
        assert stacks[name].backend > stacks[name].frontend_bound
    # ... and blender/imagick limited by inter-instruction dependencies.
    for name in ("526.blender_r", "538.imagick_r"):
        assert stacks[name].dependency > 0.2 * stacks[name].total
