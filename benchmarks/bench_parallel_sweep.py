"""Benchmark — parallel trace-engine sweep, cold vs warm disk cache.

Times the same (workload, machine) trace-profiling sweep at 1/2/4
workers with a cold in-process cache, and once more against a warm
persistent disk cache, quantifying the two scaling levers this repo
offers for larger cross-suite studies: fan-out and persistence.  Each
variant asserts bit-identical results against the serial baseline, so
the speedups are guaranteed to be like-for-like.
"""

import time

import pytest

from repro.perf.dataset import build_feature_matrix
from repro.perf.profiler import Profiler

WORKLOADS = (
    "505.mcf_r", "541.leela_r", "525.x264_r", "502.gcc_r",
    "507.cactubssn_r", "519.lbm_r", "549.fotonik3d_r", "511.povray_r",
)
MACHINES = ("skylake-i7-6700", "sparc-t4", "xeon-e5405")
TRACE_INSTRUCTIONS = 20_000


def _sweep(jobs, cache_dir=None, backend="thread"):
    profiler = Profiler(
        engine="trace",
        trace_instructions=TRACE_INSTRUCTIONS,
        cache_dir=cache_dir,
    )
    matrix = build_feature_matrix(
        WORKLOADS,
        machines=MACHINES,
        profiler=profiler,
        jobs=jobs,
        backend=backend,
    )
    return matrix, profiler


@pytest.fixture(scope="module")
def serial_digest():
    matrix, _ = _sweep(jobs=1)
    return matrix.digest()


# Thread workers share the GIL (the engines are pure Python), so their
# cold-sweep scaling is bounded by core count; the process backend is
# the true fan-out path on multi-core hosts.
@pytest.mark.parametrize(
    "jobs,backend",
    [(1, "thread"), (2, "thread"), (4, "thread"), (4, "process")],
)
def test_parallel_sweep_cold(run_once, serial_digest, jobs, backend, benchmark):
    matrix, profiler = run_once(_sweep, jobs, None, backend)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["cache"] = "cold"
    assert matrix.digest() == serial_digest
    assert profiler.cache_info().misses == len(WORKLOADS) * len(MACHINES)


@pytest.mark.parametrize("jobs", (1, 4))
def test_parallel_sweep_warm_disk(
    run_once, serial_digest, jobs, benchmark, tmp_path
):
    t0 = time.perf_counter()
    _sweep(jobs=4, cache_dir=tmp_path)  # populate the disk cache
    cold_time = time.perf_counter() - t0
    matrix, profiler = run_once(_sweep, jobs, tmp_path)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["cache"] = "warm"
    benchmark.extra_info["cold_seconds"] = cold_time
    assert matrix.digest() == serial_digest
    info = profiler.cache_info()
    assert info.misses == 0
    assert info.disk_hits == len(WORKLOADS) * len(MACHINES)
    # The acceptance bar: a warm re-run beats the cold sweep >= 5x.
    warm_time = benchmark.stats.stats.mean
    assert cold_time >= 5.0 * warm_time, (
        f"warm {warm_time:.3f}s vs cold {cold_time:.3f}s"
    )
