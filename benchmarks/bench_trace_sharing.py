"""Benchmark — shared-trace profiling across the 7-machine sweep.

Times a cold trace-engine sweep (every paper machine x a workload set)
under both trace seed scopes.  The ``machine`` scope reproduces the
historical behaviour — every (workload, machine) pair synthesizes its
own trace — while the default ``geometry`` scope synthesizes once per
distinct (workload, geometry) and replays it from the
:class:`~repro.perf.trace_cache.TraceCache`.  The seven paper machines
span exactly two geometries, so the sweep's synthesis work drops from
``7 x W`` to ``2 x W``; the bench counter-verifies both counts from the
cache statistics and asserts the acceptance bar — the shared-trace
sweep is >= 1.25x faster cold.

The workload set is the emerging-suite graph pair (PageRank on two
graph scales): pointer-chasing graph analytics carry the deepest reuse
stacks, so trace synthesis — an explicit Python LRU-stack replay — is
the dominant per-trace cost (~35-40% of a cold profile) and the sweep
is the study's most synthesis-bound.  Cache/TLB/branch simulation is
per-machine work that sharing cannot remove, so mixed SPEC sweeps see
a smaller (but still counter-verified 7x->2x synthesis) win; both
numbers are recorded in EXPERIMENTS.md.
"""

import time

from repro import obs
from repro.perf.trace_cache import TraceCache, machine_geometry
from repro.perf.trace_engine import profile_trace
from repro.uarch.machine import PAPER_MACHINE_NAMES, get_machine, paper_machines
from repro.workloads.spec import get_workload

WORKLOADS = ("pr-g1", "pr-g2")
TRACE_INSTRUCTIONS = 200_000

#: The tentpole acceptance bar: cold 7-machine sweep speedup of the
#: geometry-shared traces over per-machine synthesis.
SPEEDUP_FLOOR = 1.25


def _sweep(seed_scope):
    """One cold sweep: fresh cache, every (workload, machine) pair."""
    cache = TraceCache()
    reports = []
    for workload in WORKLOADS:
        spec = get_workload(workload)
        for name in PAPER_MACHINE_NAMES:
            reports.append(
                profile_trace(
                    spec,
                    get_machine(name),
                    instructions=TRACE_INSTRUCTIONS,
                    seed_scope=seed_scope,
                    trace_cache=cache,
                )
            )
    return reports, cache.stats()


def test_shared_trace_sweep_speedup(run_once, benchmark):
    geometries = {machine_geometry(m) for m in paper_machines()}
    assert len(geometries) == 2

    # Warm both paths once (allocator and import warm-up) so neither
    # timed run pays first-call costs; caches themselves stay cold
    # because every sweep builds a fresh one.
    _sweep("machine")
    _sweep("geometry")
    cold_time = shared_time = float("inf")
    obs.enable()
    try:
        # Best-of-3 under identical obs conditions — min-of-N is the
        # standard noise-robust wall-clock estimator for deterministic
        # code.
        for _ in range(3):
            t0 = time.perf_counter()
            _, cold_stats = _sweep("machine")
            cold_time = min(cold_time, time.perf_counter() - t0)
            t0 = time.perf_counter()
            _, shared_stats = _sweep("geometry")
            shared_time = min(shared_time, time.perf_counter() - t0)
    finally:
        obs.disable()
    obs.reset()

    # Counter-verified synthesis work: misses are syntheses.
    pairs = len(WORKLOADS) * len(PAPER_MACHINE_NAMES)
    assert cold_stats.misses == pairs
    assert shared_stats.misses == len(WORKLOADS) * len(geometries)
    assert shared_stats.hits == pairs - shared_stats.misses

    # The ledger-recorded benchmark run measures one more shared sweep;
    # the robust comparison numbers ride in extra_info.
    reports, _ = run_once(_sweep, "geometry")
    assert len(reports) == pairs
    benchmark.extra_info["cold_seconds"] = cold_time
    benchmark.extra_info["shared_seconds"] = shared_time
    benchmark.extra_info["speedup"] = cold_time / shared_time
    benchmark.extra_info["syntheses_machine_scope"] = cold_stats.misses
    benchmark.extra_info["syntheses_geometry_scope"] = shared_stats.misses
    benchmark.extra_info["trace_instructions"] = TRACE_INSTRUCTIONS
    assert cold_time >= SPEEDUP_FLOOR * shared_time, (
        f"machine-scope {cold_time:.3f}s vs geometry-scope "
        f"{shared_time:.3f}s "
        f"({cold_time / shared_time:.2f}x < {SPEEDUP_FLOOR}x)"
    )


def test_shared_traces_keep_reports_well_formed(run_once, benchmark):
    # Replayed traces must produce complete, per-machine reports: the
    # cache shares streams, never results.
    reports, stats = run_once(_sweep, "geometry")
    assert len(reports) == len(WORKLOADS) * len(PAPER_MACHINE_NAMES)
    machines = {report.machine for report in reports}
    assert len(machines) == len(PAPER_MACHINE_NAMES)
    cpis = {
        (report.workload, report.machine): report.metrics for report in reports
    }
    assert len(cpis) == len(reports)
    benchmark.extra_info["synthesis_misses"] = stats.misses
