"""Ablation — do the Table V subsets rank *design options* faithfully?

The paper validates subsets on overall scores; architects use them for
design trade-off studies.  This bench evaluates a realistic design
space (LLC/L2 sizes, branch predictor, memory latency, STLB) on the
full sub-suites and on their 3-benchmark subsets, and measures whether
the subsets pick the same winning design.
"""

from repro.core.designspace import standard_design_space, subset_design_fidelity
from repro.core.subsetting import subset_suite
from repro.reporting import Table
from repro.workloads.spec import Suite, workloads_in_suite

SUITES = (
    Suite.SPEC2017_SPEED_INT,
    Suite.SPEC2017_RATE_INT,
    Suite.SPEC2017_SPEED_FP,
    Suite.SPEC2017_RATE_FP,
)


def build(profiler):
    variants = standard_design_space()
    out = {}
    for suite in SUITES:
        names = [s.name for s in workloads_in_suite(suite)]
        subset = subset_suite(suite, k=3)
        out[suite] = subset_design_fidelity(
            names, list(subset.subset), variants=variants, profiler=profiler
        )
    return out


def test_ablation_design_space(run_once, profiler):
    results = run_once(build, profiler)
    table = Table(
        ["sub-suite", "full-suite winner", "subset winner", "rank corr",
         "max speedup gap"],
        title="Ablation: subset fidelity for design trade-off ranking",
    )
    for suite, fidelity in results.items():
        table.add_row([
            suite.value,
            fidelity.full.best(),
            fidelity.subset.best(),
            fidelity.rank_correlation,
            fidelity.max_speedup_gap,
        ])
    print()
    print(table.render())
    for suite, fidelity in results.items():
        print(f"{suite.value}: full ranking {fidelity.full.ranking()}")

    # The subsets agree on the winning design for every sub-suite and
    # approximate the full geomean speedups closely.
    agree = sum(f.best_choice_agrees for f in results.values())
    assert agree >= 3
    for suite, fidelity in results.items():
        assert fidelity.max_speedup_gap < 0.12, suite
