"""Ablation — subset size vs estimation error vs simulation-time cost.

The paper picks k=3 per sub-suite; this sweep shows the error /
simulation-time trade-off around that choice ("including more
benchmarks reduces the prediction error but increases simulation
time").
"""

import numpy as np

from repro.core.similarity import analyze_similarity
from repro.core.subsetting import select_subset
from repro.core.validation import validate_subset
from repro.reporting import Table
from repro.workloads.spec import Suite, workloads_in_suite

SUITE = Suite.SPEC2017_RATE_FP


def build(profiler):
    names = [s.name for s in workloads_in_suite(SUITE)]
    result = analyze_similarity(names, profiler=profiler)
    sweep = {}
    for k in (1, 2, 3, 4, 6, 8, 13):
        subset = select_subset(result, k)
        weights = [len(c) for c in subset.clusters]
        validation = validate_subset(
            SUITE, subset.subset, weights=weights, profiler=profiler
        )
        sweep[k] = (subset, validation)
    return sweep


def test_ablation_subset_size(run_once, profiler):
    sweep = run_once(build, profiler)
    table = Table(
        ["k", "mean error %", "max error %", "time reduction"],
        title="Ablation: subset size (SPECrate FP)",
    )
    for k, (subset, validation) in sorted(sweep.items()):
        table.add_row([
            k, validation.mean_error * 100, validation.max_error * 100,
            f"{subset.time_reduction:.1f}x",
        ])
    print()
    print(table.render())

    # Trade-off shape: the full suite has zero error; error broadly
    # shrinks with k while the time reduction shrinks monotonically.
    errors = [validation.mean_error for _, validation in sweep.values()]
    reductions = [subset.time_reduction for subset, _ in sweep.values()]
    ks = sorted(sweep)
    assert sweep[13][1].mean_error < 1e-9
    assert all(
        reductions[i] >= reductions[i + 1] - 1e-9 for i in range(len(ks) - 1)
    )
    # k=3 (the paper's pick) already reaches the <=12% band.
    assert sweep[3][1].mean_error <= 0.12
