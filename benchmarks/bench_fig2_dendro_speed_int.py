"""Figure 2 — dendrogram of the SPECspeed INT benchmarks."""

from repro.core.similarity import analyze_similarity
from repro.workloads.spec import Suite, workloads_in_suite


def build(profiler):
    names = [s.name for s in workloads_in_suite(Suite.SPEC2017_SPEED_INT)]
    return analyze_similarity(names, profiler=profiler)


def test_fig2_dendrogram_speed_int(run_once, profiler):
    result = run_once(build, profiler)
    print()
    print(f"Figure 2: SPECspeed INT dendrogram "
          f"({result.n_components} PCs, {result.variance_covered:.0%} variance; "
          f"paper: 7 PCs, >=91%)")
    print(result.dendrogram().text)
    # Paper shape: >=91% variance covered; 605.mcf_s is the most
    # distinct benchmark of the sub-suite.
    assert result.variance_covered >= 0.91
    assert result.tree.most_distinct_leaf() == "605.mcf_s"
