"""Ablation — Kaiser criterion vs fixed PC counts.

Sweeps the number of retained principal components and reports how the
subset and its validation error change, showing the Kaiser choice sits
on a stable plateau.
"""

from repro.core.similarity import analyze_similarity
from repro.core.subsetting import select_subset
from repro.core.validation import validate_subset
from repro.reporting import Table
from repro.workloads.spec import Suite, workloads_in_suite

SUITE = Suite.SPEC2017_RATE_INT


def build(profiler):
    names = [s.name for s in workloads_in_suite(SUITE)]
    kaiser = analyze_similarity(names, profiler=profiler)
    sweep = {}
    for k in (2, 4, 6, 8, kaiser.pca.n_components):
        result = analyze_similarity(names, n_components=k, profiler=profiler)
        subset = select_subset(result, 3)
        weights = [len(c) for c in subset.clusters]
        validation = validate_subset(
            SUITE, subset.subset, weights=weights, profiler=profiler
        )
        sweep[k] = (result, subset, validation)
    return kaiser, sweep


def test_ablation_kaiser(run_once, profiler):
    kaiser, sweep = run_once(build, profiler)
    table = Table(
        ["PCs", "variance", "subset", "mean error %", "kaiser?"],
        title="Ablation: retained components vs subset quality",
    )
    for k, (result, subset, validation) in sorted(sweep.items()):
        table.add_row([
            k,
            f"{result.variance_covered:.0%}",
            ", ".join(sorted(subset.subset)),
            validation.mean_error * 100,
            "<-" if k == kaiser.n_components else "",
        ])
    print()
    print(table.render())
    print(f"Kaiser retains {kaiser.n_components} PCs "
          f"({kaiser.variance_covered:.0%} variance)")
    # The Kaiser point covers >=91% of variance (paper) and the anchor
    # benchmark is stable from 4 PCs up.
    assert kaiser.variance_covered >= 0.91
    for k, (result, subset, _validation) in sweep.items():
        if k >= 4:
            assert "505.mcf_r" in subset.subset, k
