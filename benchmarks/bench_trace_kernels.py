"""Benchmark — vectorized vs. scalar trace-engine kernels.

Times ``profile_trace`` end-to-end at the study's full trace length
(200k instructions) with the scalar per-access oracle and with the
vectorized batch kernels (:mod:`repro.uarch.kernels`), asserting the
acceptance bar — the vector path is >= 5x faster — and that the two
reports are metric-for-metric identical, so the speedup is guaranteed
to be like-for-like.  A full small sweep additionally pins down
bit-identical feature-matrix digests across kernels.
"""

import time

from repro import obs
from repro.perf.dataset import build_feature_matrix
from repro.perf.profiler import Profiler
from repro.perf.trace_engine import profile_trace
from repro.uarch.machine import PAPER_MACHINE_NAMES, get_machine
from repro.workloads.spec import get_workload

WORKLOAD = "505.mcf_r"
MACHINE = "skylake-i7-6700"
TRACE_INSTRUCTIONS = 200_000

#: The tentpole acceptance bar: end-to-end profile_trace speedup of the
#: vector kernels over the scalar oracle at the full trace length.
SPEEDUP_FLOOR = 5.0


def _profile(kernel):
    spec = get_workload(WORKLOAD)
    config = get_machine(MACHINE)
    return profile_trace(
        spec, config, instructions=TRACE_INSTRUCTIONS, kernel=kernel
    )


def _sweep_digest(kernel):
    profiler = Profiler(
        engine="trace", trace_instructions=5_000, trace_kernel=kernel
    )
    matrix = build_feature_matrix(
        workloads=("505.mcf_r", "525.x264_r", "519.lbm_r"),
        machines=PAPER_MACHINE_NAMES[:3],
        profiler=profiler,
    )
    return matrix.digest()


def test_trace_kernel_speedup(run_once, benchmark):
    # Warm both paths once (allocator, import and registry warm-up)
    # so neither timed run pays first-call costs.
    _profile("scalar")
    _profile("vector")
    # The speedup assertion compares best-of-3 against best-of-3 under
    # identical obs conditions — min-of-N is the standard noise-robust
    # wall-clock estimator for deterministic code.
    scalar_time = vector_time = float("inf")
    obs.enable()
    try:
        for _ in range(3):
            t0 = time.perf_counter()
            scalar_report = _profile("scalar")
            scalar_time = min(scalar_time, time.perf_counter() - t0)
            t0 = time.perf_counter()
            vector_timed = _profile("vector")
            vector_time = min(vector_time, time.perf_counter() - t0)
    finally:
        obs.disable()
    obs.reset()
    # The benchmark entry (and the obs ledger run it records) measures
    # one more vector round; the robust numbers ride in extra_info.
    vector_report = run_once(_profile, "vector")
    assert vector_timed.metrics == vector_report.metrics
    benchmark.extra_info["scalar_seconds"] = scalar_time
    benchmark.extra_info["vector_seconds"] = vector_time
    benchmark.extra_info["speedup"] = scalar_time / vector_time
    benchmark.extra_info["trace_instructions"] = TRACE_INSTRUCTIONS
    assert scalar_report.metrics == vector_report.metrics
    assert scalar_report.cpi_stack == vector_report.cpi_stack
    assert scalar_time >= SPEEDUP_FLOOR * vector_time, (
        f"scalar {scalar_time:.3f}s vs vector {vector_time:.3f}s "
        f"({scalar_time / vector_time:.2f}x < {SPEEDUP_FLOOR}x)"
    )


def test_trace_kernel_digests_identical(run_once, benchmark):
    vector_digest = run_once(_sweep_digest, "vector")
    benchmark.extra_info["kernel"] = "vector"
    assert _sweep_digest("scalar") == vector_digest
