"""Figure 5 — validation of the INT subsets against commercial-system
scores: subset geomean vs full-suite geomean per system."""

from repro.core.subsetting import subset_suite
from repro.core.validation import validate_subset
from repro.reporting import Table
from repro.workloads.spec import Suite

#: Paper's average errors: speed INT <= ~1%, rate INT ~7% (max 12.9%).
PAPER_MEAN_ERROR = {Suite.SPEC2017_SPEED_INT: 0.01, Suite.SPEC2017_RATE_INT: 0.07}


def build(_ignored):
    out = {}
    for suite in (Suite.SPEC2017_SPEED_INT, Suite.SPEC2017_RATE_INT):
        subset = subset_suite(suite, k=3)
        weights = [len(c) for c in subset.clusters]
        out[suite] = validate_subset(suite, subset.subset, weights=weights)
    return out


def test_fig5_validation_int(run_once):
    results = run_once(build, None)
    table = Table(
        ["sub-suite", "system", "full score", "subset score", "error %"],
        title="Figure 5: INT subset validation on commercial systems",
    )
    for suite, validation in results.items():
        for system in validation.systems:
            table.add_row([
                suite.value, system.system, system.full_score,
                system.subset_score, system.error * 100,
            ])
    print()
    print(table.render())
    for suite, validation in results.items():
        print(f"{suite.value}: mean error {validation.mean_error:.1%} "
              f"(paper: {PAPER_MEAN_ERROR[suite]:.0%}), "
              f"max {validation.max_error:.1%}")
        # Paper headline: the subsets predict the suite with >=88%
        # accuracy on every system (paper max error 12.9%).
        assert validation.mean_error <= 0.12
