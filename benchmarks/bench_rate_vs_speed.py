"""Section IV-D — are rate and speed benchmarks different?

Measures every rate/speed twin's PC-space distance; the paper finds
most pairs near-identical, with omnetpp/xalancbmk/x264 elevated among
INT and imagick (most), bwaves and fotonik3d among FP."""

import numpy as np

from repro.core.rate_speed import compare_rate_speed
from repro.reporting import Table


def test_rate_vs_speed(run_once, profiler):
    comparison = run_once(compare_rate_speed, profiler=profiler)
    table = Table(
        ["pair", "category", "distance", "cophenetic"],
        title="Section IV-D: rate vs speed twin distances",
    )
    for pair in comparison.ranked("all"):
        category = "INT" if pair in comparison.int_pairs else "FP"
        table.add_row(
            [f"{pair.rate} / {pair.speed}", category, pair.distance, pair.cophenetic]
        )
    print()
    print(table.render())

    flagged_fp = [p.family for p in comparison.different_pairs("fp")]
    flagged_int = [p.family for p in comparison.different_pairs("int")]
    print(f"flagged INT: {flagged_int} (paper: omnetpp, xalancbmk, x264)")
    print(f"flagged FP : {flagged_fp} (paper: imagick >> bwaves, fotonik3d)")

    # Shape assertions.
    assert comparison.ranked("fp")[0].family == "imagick"
    fp_mean = np.mean([p.distance for p in comparison.fp_pairs])
    int_mean = np.mean([p.distance for p in comparison.int_pairs])
    assert fp_mean > int_mean
    # Most twins are close: at least half of all pairs sit below the
    # overall mean.
    distances = [p.distance for p in comparison.pairs]
    assert sum(d < np.mean(distances) for d in distances) >= len(distances) // 2
