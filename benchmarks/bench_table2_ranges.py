"""Table II — min/max ranges of the key performance metrics per
CPU2017 sub-suite on the Skylake machine."""

from repro.perf.counters import Metric
from repro.reporting import Table
from repro.workloads.spec import Suite, workloads_in_suite

#: Table II published ranges: suite -> metric -> (min, max).
PAPER_RANGES = {
    Suite.SPEC2017_RATE_INT: {
        Metric.L1D_MPKI: (0, 56), Metric.L1I_MPKI: (0, 5.1),
        Metric.L2D_MPKI: (0, 20.5), Metric.L2I_MPKI: (0, 0.9),
        Metric.L3_MPKI: (0, 4.5), Metric.BRANCH_MPKI: (0.9, 8.3),
    },
    Suite.SPEC2017_SPEED_INT: {
        Metric.L1D_MPKI: (0, 54.7), Metric.L1I_MPKI: (0, 5.2),
        Metric.L2D_MPKI: (0, 20.7), Metric.L2I_MPKI: (0, 0.9),
        Metric.L3_MPKI: (0, 4.6), Metric.BRANCH_MPKI: (0.5, 8.4),
    },
    Suite.SPEC2017_RATE_FP: {
        Metric.L1D_MPKI: (2, 95.4), Metric.L1I_MPKI: (0, 11.3),
        Metric.L2D_MPKI: (0, 7), Metric.L2I_MPKI: (0, 1.2),
        Metric.L3_MPKI: (0, 4.3), Metric.BRANCH_MPKI: (0, 2.5),
    },
    Suite.SPEC2017_SPEED_FP: {
        Metric.L1D_MPKI: (5.5, 98.4), Metric.L1I_MPKI: (0.1, 11.6),
        Metric.L2D_MPKI: (0.2, 8.6), Metric.L2I_MPKI: (0, 1.2),
        Metric.L3_MPKI: (0, 5), Metric.BRANCH_MPKI: (0.01, 2.5),
    },
}


def build_ranges(profiler):
    results = {}
    for suite, metrics in PAPER_RANGES.items():
        values = {metric: [] for metric in metrics}
        for spec in workloads_in_suite(suite):
            report = profiler.profile(spec.name, "skylake-i7-6700")
            for metric in metrics:
                values[metric].append(report.metrics[metric])
        results[suite] = {
            metric: (min(series), max(series)) for metric, series in values.items()
        }
    return results


def test_table2_ranges(run_once, profiler):
    results = run_once(build_ranges, profiler)
    table = Table(
        ["suite", "metric", "paper min-max", "model min-max"],
        title="Table II: metric ranges per sub-suite (Skylake)",
    )
    for suite, metrics in PAPER_RANGES.items():
        for metric, (lo, hi) in metrics.items():
            model_lo, model_hi = results[suite][metric]
            table.add_row(
                [suite.value, metric.value, f"{lo} - {hi}",
                 f"{model_lo:.2f} - {model_hi:.2f}"]
            )
    print()
    print(table.render())
    # Shape: model maxima within ~1.5x of the published ceilings
    # (2.5x on the FP L2D weak spot, see EXPERIMENTS.md).
    for suite, metrics in PAPER_RANGES.items():
        for metric, (_lo, hi) in metrics.items():
            slack = 2.5 if metric is Metric.L2D_MPKI and suite in (
                Suite.SPEC2017_RATE_FP, Suite.SPEC2017_SPEED_FP
            ) else 1.5
            assert results[suite][metric][1] <= hi * slack, (suite, metric)
