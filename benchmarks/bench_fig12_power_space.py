"""Figure 12 — CPU2017 vs CPU2006 in the power PC space (RAPL on three
Intel machines)."""

from repro.core.power_analysis import analyze_power_spectrum
from repro.reporting import ScatterSeries, Table, render_scatter


def test_fig12_power_space(run_once, profiler):
    spectrum = run_once(analyze_power_spectrum, profiler=profiler)
    points_2017 = {n: spectrum.points[n] for n in spectrum.names_2017}
    points_2006 = {n: spectrum.points[n] for n in spectrum.names_2006}
    print()
    print("Figure 12: power PC space (core / LLC / DRAM watts x 3 machines)")
    print(render_scatter([
        ScatterSeries.from_dict("CPU2017", points_2017),
        ScatterSeries.from_dict("CPU2006", points_2006),
    ]))
    table = Table(["quantity", "CPU2017", "CPU2006"], title="Power spreads")
    table.add_row(["hull area", spectrum.area_2017, spectrum.area_2006])
    table.add_row([
        "core power spread (W)",
        spectrum.core_power_spread_2017, spectrum.core_power_spread_2006,
    ])
    table.add_row([
        "DRAM power spread (W)",
        spectrum.dram_power_spread_2017, spectrum.dram_power_spread_2006,
    ])
    print(table.render())
    print("PC1 dominated by:", ", ".join(spectrum.dominant_features(1)))
    print("PC2 dominated by:", ", ".join(spectrum.dominant_features(2)))

    # Paper shape: CPU2017 covers a wider power space, driven by core-
    # power diversity of the new compute/SIMD-heavy benchmarks.
    assert spectrum.expansion > 1.1
    assert spectrum.core_power_spread_2017 > spectrum.core_power_spread_2006
