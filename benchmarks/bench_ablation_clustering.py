"""Ablation — hierarchical clustering vs k-means for subset selection.

Related work (Phansalkar et al., ISCA 2007) used k-means for the
CPU2006 study; this paper uses dendrograms.  This ablation selects
3-benchmark subsets with both methods and compares the validation
errors, showing the conclusion does not hinge on the clustering family.
"""

from repro.core.similarity import analyze_similarity
from repro.core.subsetting import select_subset
from repro.core.validation import validate_subset
from repro.reporting import Table
from repro.stats.kmeans import kmeans
from repro.workloads.spec import Suite, workloads_in_suite

SUITES = (
    Suite.SPEC2017_SPEED_INT,
    Suite.SPEC2017_RATE_INT,
    Suite.SPEC2017_SPEED_FP,
    Suite.SPEC2017_RATE_FP,
)


def build(profiler):
    out = {}
    for suite in SUITES:
        names = [s.name for s in workloads_in_suite(suite)]
        similarity = analyze_similarity(names, profiler=profiler)

        hier = select_subset(similarity, 3)
        hier_weights = [len(c) for c in hier.clusters]
        hier_validation = validate_subset(
            suite, hier.subset, weights=hier_weights, profiler=profiler
        )

        km = kmeans(similarity.scores, 3)
        km_subset = km.representatives(similarity.scores, list(names))
        km_weights = [len(c) for c in km.clusters(list(names)) if c]
        km_validation = validate_subset(
            suite, km_subset, weights=km_weights, profiler=profiler
        )
        out[suite] = (hier.subset, hier_validation, tuple(km_subset), km_validation)
    return out


def test_ablation_clustering_family(run_once, profiler):
    results = run_once(build, profiler)
    table = Table(
        ["sub-suite", "hierarchical subset", "err %", "k-means subset", "err %"],
        title="Ablation: hierarchical vs k-means subset selection",
    )
    for suite, (h_subset, h_val, k_subset, k_val) in results.items():
        table.add_row([
            suite.value,
            ", ".join(sorted(h_subset)), h_val.mean_error * 100,
            ", ".join(sorted(k_subset)), k_val.mean_error * 100,
        ])
    print()
    print(table.render())

    overlaps = 0
    for suite, (h_subset, h_val, k_subset, k_val) in results.items():
        # Both clustering families stay inside the paper's accuracy band.
        assert h_val.mean_error <= 0.12, suite
        assert k_val.mean_error <= 0.15, suite
        overlaps += bool(set(h_subset) & set(k_subset))
    # The methods overlap on representatives for at least half the
    # sub-suites (exact members differ inside tight clusters).
    assert overlaps >= 2
