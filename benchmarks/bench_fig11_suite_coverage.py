"""Figure 11 — CPU2017 vs CPU2006 coverage of the PC workload space,
plus the removed-benchmark coverage analysis of Section V-B."""

from repro.core.balance import analyze_balance
from repro.reporting import ScatterSeries, Table, render_scatter
from repro.workloads.spec2006 import PAPER_UNCOVERED


def test_fig11_suite_coverage(run_once, profiler):
    report = run_once(analyze_balance, profiler=profiler)
    labels = list(report.similarity.workloads)
    scores = report.similarity.scores
    points_2017 = {
        n: (scores[i, 0], scores[i, 1])
        for i, n in enumerate(labels)
        if n[0] in "56"
    }
    points_2006 = {
        n: (scores[i, 0], scores[i, 1])
        for i, n in enumerate(labels)
        if n[0] in "4" or n.startswith("48") or n[0] == "4"
    }
    print()
    print("Figure 11a: PC1 vs PC2")
    print(render_scatter([
        ScatterSeries.from_dict("CPU2017", points_2017),
        ScatterSeries.from_dict("CPU2006", points_2006),
    ]))

    table = Table(
        ["plane", "area 2017", "area 2006", "2017/2006",
         "2017 outside 2006 hull"],
        title="Figure 11: coverage statistics",
    )
    for plane in (report.plane_12, report.plane_34):
        table.add_row([
            f"PC{plane.axes[0]}-PC{plane.axes[1]}", plane.area_2017,
            plane.area_2006, plane.expansion,
            f"{plane.fraction_2017_outside_2006:.0%}",
        ])
    print(table.render())
    print(f"uncovered removed benchmarks: {report.uncovered_removed} "
          f"(paper: {PAPER_UNCOVERED})")

    # Paper shape: >25% of CPU2017 outside the 2006 PC1-PC2 hull; the
    # PC3-PC4 plane roughly doubles; exactly mcf/gobmk/astar uncovered.
    assert report.plane_12.fraction_2017_outside_2006 >= 0.15
    assert report.plane_34.expansion >= 1.5
    assert report.uncovered_removed == tuple(sorted(PAPER_UNCOVERED))
