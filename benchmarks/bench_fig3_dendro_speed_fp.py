"""Figure 3 — dendrogram of the SPECspeed FP benchmarks."""

from repro.core.similarity import analyze_similarity
from repro.workloads.spec import Suite, workloads_in_suite


def build(profiler):
    names = [s.name for s in workloads_in_suite(Suite.SPEC2017_SPEED_FP)]
    return analyze_similarity(names, profiler=profiler)


def test_fig3_dendrogram_speed_fp(run_once, profiler):
    result = run_once(build, profiler)
    print()
    print(f"Figure 3: SPECspeed FP dendrogram "
          f"({result.n_components} PCs, {result.variance_covered:.0%} variance)")
    print(result.dendrogram().text)
    # Paper shape: 607.cactubssn_s has the most distinctive behaviour
    # (unique memory and TLB performance).
    assert result.tree.most_distinct_leaf() == "607.cactubssn_s"
