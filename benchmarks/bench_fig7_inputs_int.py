"""Figure 7 — similarity between the input sets of the CPU2017 INT
benchmarks."""

import numpy as np

from repro.core.inputsets import analyze_input_sets
from repro.stats.dendrogram import render_dendrogram
from repro.workloads.spec import Suite


def build(profiler):
    return analyze_input_sets(
        suites=(Suite.SPEC2017_RATE_INT, Suite.SPEC2017_SPEED_INT),
        profiler=profiler,
    )


def test_fig7_input_sets_int(run_once, profiler):
    analysis = run_once(build, profiler)
    print()
    print(f"Figure 7: INT input-set dendrogram "
          f"({analysis.n_components} PCs, {analysis.variance_covered:.0%} "
          f"variance; paper: 10 PCs, 94%)")
    print(render_dendrogram(analysis.tree).text)
    # Paper shape: input sets of the same benchmark cluster together —
    # each benchmark's input spread is below the global workload scale.
    scale = float(np.median(analysis.distances[analysis.distances > 0]))
    for name, cohesion in analysis.input_cohesion.items():
        print(f"  {name}: input spread {cohesion:.2f} (space median {scale:.2f})")
        assert cohesion < scale, name
    assert analysis.variance_covered >= 0.90
