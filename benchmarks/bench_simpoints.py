"""Extension — SimPoint-style interval sampling per benchmark.

The related work the paper cites (Sherwood 2001; Nair & John 2008)
attacks the same simulation-time problem within a single benchmark.
This bench finds representative simulation intervals for a benchmark
sample and reports the per-benchmark sampling speedup and the accuracy
of simpoint-weighted estimates of a per-interval signal.
"""

import numpy as np

from repro.core.simpoints import find_simpoints
from repro.reporting import Table
from repro.workloads.spec import get_workload
from repro.workloads.synthesis import synthesize_trace

WORKLOADS = ("505.mcf_r", "541.leela_r", "502.gcc_r", "519.lbm_r")


def build(_ignored):
    results = {}
    for name in WORKLOADS:
        analysis = find_simpoints(
            name, instructions=120_000, interval_instructions=6_000
        )
        trace = synthesize_trace(get_workload(name), 120_000, seed=2017)
        per_interval = np.array([
            chunk.mean()
            for chunk in np.array_split(
                trace.branch_taken.astype(float), analysis.n_intervals
            )
        ])
        estimate = analysis.estimate(per_interval)
        truth = float(per_interval.mean())
        results[name] = (analysis, estimate, truth)
    return results


def test_simpoints(run_once):
    results = run_once(build, None)
    table = Table(
        ["benchmark", "intervals", "phases", "sampling speedup",
         "estimate", "truth", "error"],
        title="Extension: SimPoint-style interval sampling",
        precision=3,
    )
    for name, (analysis, estimate, truth) in results.items():
        table.add_row([
            name, analysis.n_intervals, analysis.n_phases,
            f"{analysis.speedup:.0f}x", estimate, truth,
            abs(estimate - truth),
        ])
    print()
    print(table.render())

    for name, (analysis, estimate, truth) in results.items():
        # Stationary models -> few phases, huge sampling speedups, and
        # accurate weighted estimates.
        assert analysis.n_phases <= 3, name
        assert analysis.speedup >= analysis.n_intervals / 3
        assert abs(estimate - truth) < 0.08, name
