"""Table V — 3-benchmark representative subsets per sub-suite and the
resulting simulation-time reductions."""

from repro.core.subsetting import PAPER_SUBSETS, subset_suite
from repro.reporting import Table
from repro.workloads.spec import Suite

#: Table V simulation-time reductions.
PAPER_REDUCTIONS = {
    Suite.SPEC2017_SPEED_INT: 5.6,
    Suite.SPEC2017_RATE_INT: 4.5,
    Suite.SPEC2017_SPEED_FP: 4.5,
    Suite.SPEC2017_RATE_FP: 6.3,
}


def build(_suite_list):
    return {suite: subset_suite(suite, k=3) for suite in PAPER_SUBSETS}


def test_table5_subsets(run_once):
    results = run_once(build, list(PAPER_SUBSETS))
    table = Table(
        ["sub-suite", "model subset", "paper subset", "reduction", "paper"],
        title="Table V: representative 3-benchmark subsets",
    )
    for suite, result in results.items():
        table.add_row([
            suite.value,
            ", ".join(sorted(result.subset)),
            ", ".join(sorted(PAPER_SUBSETS[suite])),
            f"{result.time_reduction:.1f}x",
            f"{PAPER_REDUCTIONS[suite]:.1f}x",
        ])
    print()
    print(table.render())
    for suite, result in results.items():
        # The anchor benchmark of each subset (the most distinct one)
        # matches the paper's subset.
        anchors = {
            Suite.SPEC2017_SPEED_INT: "605.mcf_s",
            Suite.SPEC2017_RATE_INT: "505.mcf_r",
            Suite.SPEC2017_SPEED_FP: "607.cactubssn_s",
            Suite.SPEC2017_RATE_FP: "507.cactubssn_r",
        }
        assert anchors[suite] in result.subset
        # Reductions in the paper's 4.5-6.3x order of magnitude.
        assert 2.5 <= result.time_reduction <= 10.0
