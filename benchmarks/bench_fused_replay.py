"""Benchmark — fused multi-machine replay on a warm-trace sweep.

Times a *warm* 7-machine trace sweep (traces pre-synthesized into a
shared :class:`~repro.perf.trace_cache.TraceCache`, so synthesis is off
the clock) under both replay strategies.  ``independent`` replays the
trace once per machine — set-partitioning every access stream seven
times — while ``fused`` partitions each stream once per distinct
(line_bytes, num_sets) geometry and walks all machines' tag arrays and
branch tables over the shared partition
(:func:`repro.uarch.fused.replay_fused`).

The workload set is a mixed six-benchmark slice of the paper suite
(memory-bound, branchy, media, stencil, compression and compiler
codes), so the measured win is the campaign-shaped one, not a
best-case single kernel.  The bench asserts the tentpole acceptance
bar — the fused warm sweep is >= 3x faster — and that both strategies
produce **bit-identical** reports (digest comparison over every
(workload, machine) pair), because a speedup that changes results is a
bug, not a win.
"""

import time

from repro.perf.trace_cache import TraceCache
from repro.perf.trace_engine import profile_trace_batch
from repro.uarch.machine import PAPER_MACHINE_NAMES, paper_machines
from repro.workloads.spec import get_workload

WORKLOADS = (
    "505.mcf_r",
    "500.perlbench_r",
    "525.x264_r",
    "519.lbm_r",
    "557.xz_r",
    "502.gcc_r",
)
TRACE_INSTRUCTIONS = 200_000

#: The tentpole acceptance bar: warm 7-machine sweep speedup of fused
#: over independent replay, bit-identical reports required.
SPEEDUP_FLOOR = 3.0


def _sweep(replay, cache):
    """One warm sweep: every workload batched across all 7 machines."""
    machines = paper_machines()
    reports = []
    for workload in WORKLOADS:
        reports.extend(
            profile_trace_batch(
                get_workload(workload),
                machines,
                instructions=TRACE_INSTRUCTIONS,
                kernel="vector",
                seed_scope="geometry",
                replay=replay,
                trace_cache=cache,
            )
        )
    return reports


def _digests(reports):
    from tests.parity import report_digest

    return {
        (report.workload, report.machine): report_digest(report)
        for report in reports
    }


def test_fused_replay_sweep_speedup(run_once, benchmark):
    cache = TraceCache()
    # Warm both paths once: traces land in the cache, imports and
    # allocator pools settle, so the timed runs measure replay only.
    independent_reports = _sweep("independent", cache)
    fused_reports = _sweep("fused", cache)
    assert cache.stats().misses == 2 * len(WORKLOADS)  # 2 geometries

    # Bit-identity first: a replay strategy that changes any metric of
    # any pair disqualifies itself before any timing happens.
    want = _digests(independent_reports)
    got = _digests(fused_reports)
    assert len(want) == len(WORKLOADS) * len(PAPER_MACHINE_NAMES)
    assert got == want

    independent_time = fused_time = float("inf")
    # Best-of-3: min-of-N is the standard noise-robust wall-clock
    # estimator for deterministic code.
    for _ in range(3):
        t0 = time.perf_counter()
        _sweep("independent", cache)
        independent_time = min(independent_time, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _sweep("fused", cache)
        fused_time = min(fused_time, time.perf_counter() - t0)

    # The ledger-recorded run measures one more fused sweep; the
    # robust comparison numbers ride in extra_info.
    reports = run_once(_sweep, "fused", cache)
    assert len(reports) == len(WORKLOADS) * len(PAPER_MACHINE_NAMES)
    benchmark.extra_info["independent_seconds"] = independent_time
    benchmark.extra_info["fused_seconds"] = fused_time
    benchmark.extra_info["speedup"] = independent_time / fused_time
    benchmark.extra_info["workloads"] = len(WORKLOADS)
    benchmark.extra_info["machines"] = len(PAPER_MACHINE_NAMES)
    benchmark.extra_info["trace_instructions"] = TRACE_INSTRUCTIONS
    benchmark.extra_info["reports_bit_identical"] = True
    assert independent_time >= SPEEDUP_FLOOR * fused_time, (
        f"independent {independent_time:.3f}s vs fused {fused_time:.3f}s "
        f"({independent_time / fused_time:.2f}x < {SPEEDUP_FLOOR}x)"
    )


def test_fused_sweep_reports_are_complete(run_once, benchmark):
    # Fused batching shares partitions, never results: every pair gets
    # its own complete report, in input order.
    cache = TraceCache()
    reports = run_once(_sweep, "fused", cache)
    assert len(reports) == len(WORKLOADS) * len(PAPER_MACHINE_NAMES)
    by_pair = {(r.workload, r.machine): r for r in reports}
    assert len(by_pair) == len(reports)
    machines = {r.machine for r in reports}
    assert len(machines) == len(PAPER_MACHINE_NAMES)
    benchmark.extra_info["synthesis_misses"] = cache.stats().misses
