"""Table VI — identified subsets vs two random subsets per sub-suite."""

import numpy as np

from repro.core.subsetting import subset_suite
from repro.core.validation import random_subset_errors, validate_subset
from repro.reporting import Table
from repro.workloads.spec import Suite

#: Table VI published errors (identified, rand set 1, rand set 2).
PAPER = {
    Suite.SPEC2017_SPEED_INT: (0.11, 0.282, 0.234),
    Suite.SPEC2017_RATE_INT: (0.07, 0.224, 0.217),
    Suite.SPEC2017_SPEED_FP: (0.03, 0.497, 0.256),
    Suite.SPEC2017_RATE_FP: (0.045, 0.391, 0.271),
}


def build(_ignored):
    out = {}
    for suite in PAPER:
        subset = subset_suite(suite, k=3)
        weights = [len(c) for c in subset.clusters]
        identified = validate_subset(suite, subset.subset, weights=weights)
        randoms = random_subset_errors(suite, k=3, n_sets=2, seed=2017)
        out[suite] = (identified, randoms)
    return out


def test_table6_random_subsets(run_once):
    results = run_once(build, None)
    table = Table(
        ["sub-suite", "identified %", "rand set1 %", "rand set2 %",
         "paper identified %", "paper rand %"],
        title="Table VI: identified vs random subsets (mean error)",
    )
    for suite, (identified, randoms) in results.items():
        p_id, p_r1, p_r2 = PAPER[suite]
        table.add_row([
            suite.value,
            identified.mean_error * 100,
            randoms[0].mean_error * 100,
            randoms[1].mean_error * 100,
            p_id * 100,
            (p_r1 + p_r2) / 2 * 100,
        ])
    print()
    print(table.render())
    identified_mean = np.mean(
        [identified.mean_error for identified, _ in results.values()]
    )
    random_mean = np.mean(
        [r.mean_error for _, randoms in results.values() for r in randoms]
    )
    print(f"overall identified {identified_mean:.1%} vs random {random_mean:.1%} "
          f"(paper: ~6% vs ~30%)")
    # Shape: identified subsets stay within the paper's accuracy band and
    # beat the random average.
    assert identified_mean <= 0.12
    assert identified_mean < random_mean
