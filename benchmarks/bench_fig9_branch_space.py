"""Figure 9 — the CPU2017 benchmarks in the branch-behaviour PC space."""

from repro.core.classification import branch_space, extremes
from repro.perf.counters import Metric
from repro.reporting import ScatterSeries, render_scatter


def test_fig9_branch_space(run_once, profiler):
    space = run_once(branch_space, profiler=profiler)
    print()
    print(f"Figure 9: branch-behaviour PC space "
          f"({space.variance_covered:.0%} variance in 2 PCs; paper: 94%)")
    int_points = {
        k: v for k, v in space.points.items() if k[0] in "56" and int(k[0]) in (5, 6)
        and not _is_fp(k)
    }
    fp_points = {k: v for k, v in space.points.items() if _is_fp(k)}
    print(render_scatter(
        [
            ScatterSeries.from_dict("INT", int_points),
            ScatterSeries.from_dict("FP", fp_points),
        ],
        x_label="PC1", y_label="PC2",
    ))
    print("PC1 dominated by:", ", ".join(space.dominated_by[1]))
    print("PC2 dominated by:", ", ".join(space.dominated_by[2]))

    worst_mpki = [n for n, _ in extremes(Metric.BRANCH_MPKI, top=4, profiler=profiler)]
    highest_taken = [
        n for n, _ in extremes(Metric.BRANCH_TAKEN_PKI, top=4, profiler=profiler)
    ]
    print("worst mispredictors:", worst_mpki, "(paper: leela, mcf)")
    print("highest taken rates:", highest_taken, "(paper: mcf, gcc, C++ codes)")

    # Paper shape: leela & mcf worst mispredictors; variance mostly in 2 PCs.
    families = {w.split(".")[1].rsplit("_", 1)[0] for w in worst_mpki}
    assert {"leela", "mcf"} <= families
    assert space.variance_covered > 0.7

    # FP benchmarks cluster together (less control-flow diversity): the
    # FP cloud is tighter than the INT cloud along PC2.
    import numpy as np

    fp_spread = np.std([v[1] for v in fp_points.values()])
    int_spread = np.std([v[1] for v in int_points.values()])
    assert fp_spread < int_spread


def _is_fp(name: str) -> bool:
    from repro.workloads.spec import get_workload

    return get_workload(name).suite.is_floating_point
