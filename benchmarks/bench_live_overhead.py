"""Benchmark — live telemetry hub overhead and digest identity.

Times the same process-backend trace sweep with the live hub armed and
an HTTP client scraping ``/metrics`` + ``/status`` every 100 ms, versus
the hub fully off, best-of-3 each, and asserts the guarantee that makes
``--serve-port`` safe to leave on: report digests are bit-identical in
both modes.  Scrape counts and the measured overhead land in
``extra_info``; the served CLI runs are recorded to the obs ledger
(``--serve-port`` implies tracing) exactly like profiled runs are.

Run as a script for the CI gate (subprocess-isolated, so each variant
pays identical interpreter/import costs)::

    python benchmarks/bench_live_overhead.py --check --reps 3 \\
        --budget 0.05

which exits non-zero if digests differ, the server was never scraped,
or the best served wall time exceeds ``(1 + budget) x`` the best plain
wall time.
"""

import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

from repro.obs import httpd as obs_httpd
from repro.obs import live as obs_live
from repro.obs import openmetrics
from repro.perf.dataset import build_feature_matrix
from repro.perf.profiler import Profiler

WORKLOADS = (
    "505.mcf_r", "541.leela_r", "525.x264_r", "502.gcc_r",
    "507.cactubssn_r", "519.lbm_r", "549.fotonik3d_r", "511.povray_r",
)
MACHINES = ("skylake-i7-6700", "sparc-t4", "xeon-e5405")
TRACE_INSTRUCTIONS = 20_000
JOBS = 2
SCRAPE_INTERVAL_S = 0.1


def _sweep():
    profiler = Profiler(engine="trace", trace_instructions=TRACE_INSTRUCTIONS)
    return build_feature_matrix(
        WORKLOADS,
        machines=MACHINES,
        profiler=profiler,
        jobs=JOBS,
        backend="process",
    )


def _scrape_forever(url, halt, tally):
    """Hit /metrics and /status until halted; count parseable scrapes."""
    while not halt.is_set():
        try:
            with urllib.request.urlopen(url + "/metrics", timeout=1) as rsp:
                openmetrics.parse_openmetrics(rsp.read().decode())
            with urllib.request.urlopen(url + "/status", timeout=1) as rsp:
                rsp.read()
            tally[0] += 1
        except Exception:
            tally[1] += 1
        halt.wait(SCRAPE_INTERVAL_S)


def test_live_hub_overhead(benchmark):
    # Plain best-of-3 by hand; the served variant — hub active, HTTP
    # server up, a client scraping at 10 Hz — under the benchmark
    # clock.  The delta is the hub's full cost: the worker telemetry
    # queue, parent-side folding, and concurrent scrape rendering.
    plain_best, plain_digest = 1e9, None
    for _ in range(3):
        t0 = time.perf_counter()
        matrix = _sweep()
        plain_best = min(plain_best, time.perf_counter() - t0)
        plain_digest = matrix.digest()

    def served_sweep():
        obs_live.activate(monitor=False)
        server = obs_httpd.start_server(port=0)
        halt = threading.Event()
        tally = [0, 0]
        scraper = threading.Thread(
            target=_scrape_forever, args=(server.url, halt, tally),
            daemon=True,
        )
        scraper.start()
        try:
            return _sweep()
        finally:
            halt.set()
            scraper.join(timeout=2)
            server.close()
            obs_live.deactivate()
            benchmark.extra_info["scrapes"] = (
                benchmark.extra_info.get("scrapes", 0) + tally[0]
            )
            benchmark.extra_info["scrape_errors"] = (
                benchmark.extra_info.get("scrape_errors", 0) + tally[1]
            )

    matrix = benchmark.pedantic(served_sweep, rounds=3, iterations=1)
    assert matrix.digest() == plain_digest, "live hub changed the results"
    assert benchmark.extra_info["scrapes"] > 0, "server was never scraped"
    benchmark.extra_info["plain_best_s"] = plain_best
    if benchmark.stats is not None:  # absent under --benchmark-disable
        served_best = benchmark.stats.stats.min
        benchmark.extra_info["overhead_pct"] = round(
            100.0 * (served_best / plain_best - 1.0), 2
        )


def _wait_for_url(errpath, proc, timeout_s=30.0):
    """Poll the subprocess's stderr file for the serve banner."""
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "sweep exited before announcing its telemetry endpoint"
            )
        with open(errpath, "r") as handle:
            match = re.search(
                r"live telemetry at (http://\S+)", handle.read()
            )
        if match is not None:
            return match.group(1)
        time.sleep(0.02)
    raise SystemExit("timed out waiting for the telemetry endpoint banner")


def _cli_run(serve):
    """One subprocess sweep; returns (wall_seconds, digest, scrapes)."""
    argv = [
        sys.executable, "-m", "repro.cli", "dataset",
        "--suite", "rate-int", "--engine", "trace",
        "--jobs", "2", "--backend", "process",
    ]
    if serve:
        argv += ["--serve-port", "0"]
    with tempfile.TemporaryDirectory() as tmp:
        errpath = os.path.join(tmp, "stderr.log")
        with open(errpath, "w") as err:
            t0 = time.perf_counter()
            proc = subprocess.Popen(
                argv, stdout=subprocess.PIPE, stderr=err, text=True
            )
            halt = threading.Event()
            tally = [0, 0]
            scraper = None
            if serve:
                url = _wait_for_url(errpath, proc)
                scraper = threading.Thread(
                    target=_scrape_forever, args=(url, halt, tally),
                    daemon=True,
                )
                scraper.start()
            stdout, _ = proc.communicate()
            wall = time.perf_counter() - t0
            halt.set()
            if scraper is not None:
                scraper.join(timeout=2)
        with open(errpath, "r") as handle:
            stderr_tail = handle.read()[-2000:]
    if proc.returncode != 0:
        raise SystemExit(
            f"sweep failed ({' '.join(argv)}):\n{stderr_tail}"
        )
    match = re.search(r"digest:\s+([0-9a-f]{64})", stdout)
    if match is None:
        raise SystemExit(f"no digest line in output:\n{stdout[-2000:]}")
    return wall, match.group(1), tally[0]


def _check(reps, budget):
    """CI gate: digest identity, live scrapes, and the wall budget."""
    plain, served = [], []
    digests = set()
    scrape_total = 0
    # Interleave the variants so slow-runner drift hits both equally.
    for rep in range(reps):
        wall, digest, _ = _cli_run(serve=False)
        plain.append(wall)
        digests.add(digest)
        wall, digest, scrapes = _cli_run(serve=True)
        served.append(wall)
        digests.add(digest)
        scrape_total += scrapes
        print(
            f"rep {rep + 1}/{reps}: off {plain[-1]:.2f}s, "
            f"serve {served[-1]:.2f}s ({scrapes} scrapes)",
            flush=True,
        )
    overhead = min(served) / min(plain) - 1.0
    print(f"digests: {len(digests)} distinct ({next(iter(digests))[:16]}...)")
    print(
        f"best-of-{reps}: off {min(plain):.2f}s, serve {min(served):.2f}s "
        f"-> overhead {100 * overhead:+.1f}% (budget {100 * budget:.0f}%)"
    )
    failed = False
    if len(digests) != 1:
        print("FAIL: --serve-port changed the report digest")
        failed = True
    if scrape_total == 0:
        print("FAIL: the telemetry endpoint was never scraped mid-run")
        failed = True
    if overhead > budget:
        print("FAIL: live-hub overhead exceeds the budget")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    import argparse

    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument("--check", action="store_true",
                     help="run the CI digest/overhead gate")
    cli.add_argument("--reps", type=int, default=3,
                     help="sweeps per variant (best-of-N)")
    cli.add_argument("--budget", type=float, default=0.05,
                     help="allowed fractional wall overhead")
    options = cli.parse_args()
    if not options.check:
        cli.error("use --check (or run under pytest for the benchmarks)")
    sys.exit(_check(options.reps, options.budget))
