"""CI gate — scrape the live telemetry endpoint during a real sweep.

Drives the full seven-machine ``dataset`` sweep twice in subprocesses:
once plain (the control) and once with ``--serve-port 0``.  While the
served sweep runs, this script scrapes ``GET /metrics`` and
``GET /status`` repeatedly, and the run only passes if

* at least one mid-run ``/metrics`` body parses as valid OpenMetrics
  (via ``repro.obs.openmetrics.parse_openmetrics``) with the negotiated
  content type and carries live progress/executor families,
* at least one mid-run ``/status`` snapshot reports the sweep in
  flight (``active: true`` with a non-empty sweep list), and
* the served sweep's report digest is bit-identical to the control's —
  serving telemetry must never perturb results.

Usage (from the repository root, with ``PYTHONPATH=src``)::

    python scripts/ci_live_scrape.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import openmetrics  # noqa: E402

SWEEP_ARGV = [
    sys.executable, "-m", "repro.cli", "dataset",
    "--suite", "rate-int", "--engine", "trace",
    "--jobs", "4", "--backend", "process",
]
SCRAPE_INTERVAL_S = 0.05
URL_TIMEOUT_S = 30.0
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)
DIGEST_RE = re.compile(r"digest:\s+([0-9a-f]{64})")


def _digest_of(stdout, context):
    match = DIGEST_RE.search(stdout)
    if match is None:
        raise SystemExit(
            f"no digest line in {context} output:\n{stdout[-2000:]}"
        )
    return match.group(1)


def _control_run():
    proc = subprocess.run(SWEEP_ARGV, capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(f"control sweep failed:\n{proc.stderr[-2000:]}")
    return _digest_of(proc.stdout, "control")


def _wait_for_url(errpath, proc):
    deadline = time.perf_counter() + URL_TIMEOUT_S
    while time.perf_counter() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "served sweep exited before announcing its endpoint"
            )
        with open(errpath, "r") as handle:
            match = re.search(
                r"live telemetry at (http://\S+)", handle.read()
            )
        if match is not None:
            return match.group(1)
        time.sleep(0.02)
    raise SystemExit("timed out waiting for the telemetry endpoint banner")


def _scrape_until_exit(url, proc):
    """Scrape both endpoints until the sweep exits; return the evidence."""
    evidence = {
        "metrics_ok": 0,
        "status_live": 0,
        "families": set(),
        "content_type": None,
        "scrape_errors": 0,
    }
    while proc.poll() is None:
        try:
            with urllib.request.urlopen(url + "/metrics", timeout=2) as rsp:
                evidence["content_type"] = rsp.headers["Content-Type"]
                families = openmetrics.parse_openmetrics(
                    rsp.read().decode()
                )
            evidence["families"].update(families)
            evidence["metrics_ok"] += 1
            with urllib.request.urlopen(url + "/status", timeout=2) as rsp:
                status = json.loads(rsp.read().decode())
            if status.get("active") and status.get("sweeps"):
                evidence["status_live"] += 1
        except Exception:
            # The window between server start and sweep exit is what we
            # are probing; scrapes racing the shutdown are expected.
            evidence["scrape_errors"] += 1
        time.sleep(SCRAPE_INTERVAL_S)
    return evidence


def _served_run():
    with tempfile.TemporaryDirectory() as tmp:
        errpath = os.path.join(tmp, "stderr.log")
        with open(errpath, "w") as err:
            proc = subprocess.Popen(
                SWEEP_ARGV + ["--serve-port", "0"],
                stdout=subprocess.PIPE, stderr=err, text=True,
            )
            url = _wait_for_url(errpath, proc)
            print(f"scraping {url} during the sweep", flush=True)
            evidence = _scrape_until_exit(url, proc)
            stdout, _ = proc.communicate()
        with open(errpath, "r") as handle:
            stderr_tail = handle.read()[-2000:]
    if proc.returncode != 0:
        raise SystemExit(f"served sweep failed:\n{stderr_tail}")
    return _digest_of(stdout, "served"), evidence


def main():
    print(f"control: {' '.join(SWEEP_ARGV)}", flush=True)
    control_digest = _control_run()
    print(f"control digest {control_digest[:16]}...", flush=True)
    served_digest, evidence = _served_run()
    print(
        f"served digest {served_digest[:16]}..., "
        f"{evidence['metrics_ok']} metrics scrapes, "
        f"{evidence['status_live']} live status snapshots, "
        f"{evidence['scrape_errors']} races, "
        f"{len(evidence['families'])} metric families",
        flush=True,
    )
    failures = []
    if evidence["metrics_ok"] == 0:
        failures.append("no mid-run /metrics scrape parsed as OpenMetrics")
    if evidence["content_type"] not in (None, OPENMETRICS_CONTENT_TYPE):
        failures.append(
            f"wrong /metrics content type: {evidence['content_type']!r}"
        )
    expected = ("repro_progress_completed", "repro_executor_pool_jobs")
    missing = [f for f in expected if f not in evidence["families"]]
    if evidence["metrics_ok"] and missing:
        failures.append(f"live families never scraped: {missing}")
    if evidence["status_live"] == 0:
        failures.append("/status never reported the sweep in flight")
    if served_digest != control_digest:
        failures.append(
            f"--serve-port changed the digest: {control_digest[:16]}... "
            f"vs {served_digest[:16]}..."
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("PASS: live endpoint served valid telemetry mid-run and "
              "left the digest bit-identical")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
