"""CI gate — campaign crash-resume byte-identity at 64-machine scale.

Runs the same 64-machine x six-workload campaign twice:

* **straight** — one uninterrupted run;
* **killed-and-resumed** — the same campaign with an
  :class:`~repro.errors.ExecutionError` injected mid-shard (the third
  shard's executor sweep dies), then ``resume``d to completion.

The gate passes only if the resumed campaign is **byte-identical** to
the straight one: equal campaign digests (sha256 over every per-pair
report digest in row order) and equal per-column sha256 checksums of
the columnar store, with both stores passing :meth:`verify`.  The
resumed run must also actually resume — the shards that checkpointed
before the kill are skipped, not recomputed.

Usage (from the repository root)::

    python scripts/ci_campaign_smoke.py [output-dir]

The output directory (default ``./campaign-smoke``) keeps both campaign
directories for artifact upload.
"""

import os
import shutil
import sys
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import CampaignConfig, CampaignRunner, CampaignStore
from repro.errors import ExecutionError

WORKLOADS = (
    "505.mcf_r",
    "500.perlbench_r",
    "525.x264_r",
    "519.lbm_r",
    "557.xz_r",
    "502.gcc_r",
)

CONFIG = CampaignConfig(
    machines=64,
    workloads=WORKLOADS,
    engine="trace",
    trace_instructions=20_000,
    shard_machines=16,
)

#: The shard whose executor sweep dies in the killed run (0-based call
#: count; shards 0 and 1 checkpoint first, so resume must skip two).
KILL_AT_CALL = 3


def main() -> int:
    """Run the gate; returns a process exit code."""
    root = Path(sys.argv[1] if len(sys.argv) > 1 else "campaign-smoke")
    if root.exists():
        shutil.rmtree(root)
    root.mkdir(parents=True)

    print(f"campaign-smoke: {CONFIG.machines} machines x "
          f"{len(CONFIG.workloads)} workloads, {CONFIG.n_shards} shards")

    straight = CampaignRunner(
        root / "straight", config=CONFIG, jobs=2
    ).run()
    print(f"straight: digest {straight['digest'][:16]} "
          f"({straight['shards']['computed']} shards computed)")

    real = CampaignRunner._profile_shard
    calls = {"count": 0}

    def crashing(self, profiler, pairs):
        calls["count"] += 1
        if calls["count"] == KILL_AT_CALL:
            raise ExecutionError("campaign-smoke: injected mid-shard kill")
        return real(self, profiler, pairs)

    CampaignRunner._profile_shard = crashing
    try:
        CampaignRunner(root / "resumed", config=CONFIG, jobs=2).run()
    except ExecutionError as error:
        print(f"killed:   {error}")
    else:
        print("FAIL: injected kill did not fire")
        return 1
    finally:
        CampaignRunner._profile_shard = real

    resumed = CampaignRunner(root / "resumed", jobs=2).run(resume=True)
    print(f"resumed:  digest {resumed['digest'][:16]} "
          f"({resumed['shards']['skipped']} shards skipped, "
          f"{resumed['shards']['computed']} recomputed)")

    failures = []
    if resumed["shards"]["skipped"] != KILL_AT_CALL - 1:
        failures.append(
            f"resume recomputed checkpointed shards: expected "
            f"{KILL_AT_CALL - 1} skipped, got {resumed['shards']['skipped']}"
        )
    if resumed["digest"] != straight["digest"]:
        failures.append(
            f"campaign digests diverged: straight {straight['digest']} "
            f"vs resumed {resumed['digest']}"
        )
    if resumed["column_checksums"] != straight["column_checksums"]:
        diverged = sorted(
            metric
            for metric in straight["column_checksums"]
            if straight["column_checksums"][metric]
            != resumed["column_checksums"].get(metric)
        )
        failures.append(f"column checksums diverged: {diverged}")
    for label in ("straight", "resumed"):
        damaged = CampaignStore.open(root / label / "store").verify()
        if damaged:
            failures.append(f"{label} store failed verify: {damaged}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("campaign-smoke: resumed store byte-identical to straight run "
          f"({len(straight['column_checksums'])} columns verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
